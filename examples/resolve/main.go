// Resolve: log-based directory resolution between partitioned replicas —
// the Coda mechanism §6 of the paper describes: "transparent resolution
// of directory updates made to partitioned server replicas is done using
// a log-based strategy.  The logs for resolution are maintained in RVM."
//
// Two replicas of one directory each keep, in recoverable memory, both
// the directory contents and a resolution log of the operations applied
// to them.  A network partition lets the replicas diverge; when it heals,
// each replica replays the operations it missed from its peer's
// resolution log.  Because the logs live in RVM, a replica can crash at
// any point — mid-partition, mid-resolution — and come back with its
// directory and its log mutually consistent, which is exactly why Coda
// put them there.
//
// Run:
//
//	go run ./examples/resolve
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
)

// op codes for resolution-log entries.
const (
	opCreate = 1
	opRemove = 2
)

// replica is one server's state: a directory (map of name->fid) and a
// resolution log, both in an rds heap.
//
// Heap root -> state block: [8 dirHead][8 logHead][8 logLen][8 nextOpID]
// Directory entry block:    [8 next][8 fid][2 nameLen][name]
// Resolution log block:     [8 next][8 opID][1 op][2 nameLen][name][8 fid]
type replica struct {
	name   string
	origin uint64 // 0 for A, 1 for B: op ids are counter*2+origin, so
	// independent operations on partitioned replicas never collide
	db   *rvm.RVM
	heap *rds.Heap
}

func be64(b []byte) uint64     { return binary.BigEndian.Uint64(b) }
func put64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }
func be16(b []byte) int        { return int(binary.BigEndian.Uint16(b)) }
func put16(b []byte, v int)    { binary.BigEndian.PutUint16(b, uint16(v)) }

func openReplica(dir, name string, origin uint64) *replica {
	base := filepath.Join(dir, name)
	os.MkdirAll(base, 0o755)
	logPath := filepath.Join(base, "r.log")
	segPath := filepath.Join(base, "r.seg")
	if _, err := os.Stat(logPath); os.IsNotExist(err) {
		if err := rvm.CreateLog(logPath, 1<<21); err != nil {
			log.Fatal(err)
		}
		if err := rvm.CreateSegment(segPath, 1, 16*int64(rvm.PageSize)); err != nil {
			log.Fatal(err)
		}
	}
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		log.Fatal(err)
	}
	reg, err := db.Map(segPath, 0, 16*int64(rvm.PageSize))
	if err != nil {
		log.Fatal(err)
	}
	r := &replica{name: name, origin: origin, db: db}
	r.heap, err = rds.Attach(db, reg)
	if err != nil {
		r.heap, err = rds.Format(db, reg)
		if err != nil {
			log.Fatal(err)
		}
		tx, err := db.Begin(rvm.Restore)
		if err != nil {
			log.Fatal(err)
		}
		state, err := r.heap.Alloc(tx, 32)
		if err != nil {
			log.Fatal(err)
		}
		b, _ := r.heap.Bytes(state)
		if err := r.heap.SetRange(tx, state, 0, 32); err != nil {
			log.Fatal(err)
		}
		put64(b[24:], 1) // first op id
		if err := r.heap.SetRoot(tx, state); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(rvm.Flush); err != nil {
			log.Fatal(err)
		}
	}
	return r
}

func (r *replica) state() []byte {
	b, err := r.heap.Bytes(r.heap.Root())
	if err != nil {
		log.Fatal(err)
	}
	return b
}

// logEntry is a decoded resolution-log record.
type logEntry struct {
	id   uint64
	op   byte
	name string
	fid  uint64
}

// apply performs op locally AND appends it to the resolution log, in one
// transaction — the directory and its log can never disagree.  local
// marks operations this replica originated (they advance its counter).
func (r *replica) apply(e logEntry, local bool) error {
	tx, err := r.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	fail := func(err error) error { tx.Abort(); return err }
	st := r.state()

	switch e.op {
	case opCreate:
		entry, err := r.heap.Alloc(tx, int64(18+len(e.name)))
		if err != nil {
			return fail(err)
		}
		b, _ := r.heap.Bytes(entry)
		if err := r.heap.SetRange(tx, entry, 0, int64(18+len(e.name))); err != nil {
			return fail(err)
		}
		put64(b[0:], be64(st[0:])) // next = old dir head
		put64(b[8:], e.fid)
		put16(b[16:], len(e.name))
		copy(b[18:], e.name)
		if err := r.heap.SetRange(tx, r.heap.Root(), 0, 8); err != nil {
			return fail(err)
		}
		put64(st[0:], uint64(entry))
	case opRemove:
		var prev rds.Offset
		cur := rds.Offset(be64(st[0:]))
		for cur != 0 {
			b, _ := r.heap.Bytes(cur)
			next := rds.Offset(be64(b[0:]))
			if string(b[18:18+be16(b[16:])]) == e.name {
				if prev == 0 {
					if err := r.heap.SetRange(tx, r.heap.Root(), 0, 8); err != nil {
						return fail(err)
					}
					put64(st[0:], uint64(next))
				} else {
					pb, _ := r.heap.Bytes(prev)
					if err := r.heap.SetRange(tx, prev, 0, 8); err != nil {
						return fail(err)
					}
					put64(pb[0:], uint64(next))
				}
				if err := r.heap.Free(tx, cur); err != nil {
					return fail(err)
				}
				break
			}
			prev, cur = cur, next
		}
	}

	// Append to the resolution log (newest first; ids give replay order).
	rec, err := r.heap.Alloc(tx, int64(27+len(e.name)))
	if err != nil {
		return fail(err)
	}
	b, _ := r.heap.Bytes(rec)
	if err := r.heap.SetRange(tx, rec, 0, int64(27+len(e.name))); err != nil {
		return fail(err)
	}
	put64(b[0:], be64(st[8:])) // next = old log head
	put64(b[8:], e.id)
	b[16] = e.op
	put16(b[17:], len(e.name))
	copy(b[19:], e.name)
	put64(b[int64(19+len(e.name)):], e.fid)
	if err := r.heap.SetRange(tx, r.heap.Root(), 8, 24); err != nil {
		return fail(err)
	}
	put64(st[8:], uint64(rec))
	put64(st[16:], be64(st[16:])+1)
	if local {
		put64(st[24:], be64(st[24:])+1)
	}
	return tx.Commit(rvm.Flush)
}

// do performs a new local operation (assigning it a collision-free id).
func (r *replica) do(op byte, name string, fid uint64) {
	id := be64(r.state()[24:])*2 + r.origin
	if err := r.apply(logEntry{id: id, op: op, name: name, fid: fid}, true); err != nil {
		log.Fatal(err)
	}
}

// logEntries returns the resolution log, oldest first.
func (r *replica) logEntries() []logEntry {
	var out []logEntry
	for cur := rds.Offset(be64(r.state()[8:])); cur != 0; {
		b, err := r.heap.Bytes(cur)
		if err != nil {
			log.Fatal(err)
		}
		n := be16(b[17:])
		out = append(out, logEntry{
			id:   be64(b[8:]),
			op:   b[16],
			name: string(b[19 : 19+n]),
			fid:  be64(b[int64(19+n):]),
		})
		cur = rds.Offset(be64(b[0:]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// list returns the directory contents sorted by name.
func (r *replica) list() []string {
	var out []string
	for cur := rds.Offset(be64(r.state()[0:])); cur != 0; {
		b, _ := r.heap.Bytes(cur)
		out = append(out, fmt.Sprintf("%s(fid=%d)", b[18:18+be16(b[16:])], be64(b[8:])))
		cur = rds.Offset(be64(b[0:]))
	}
	sort.Strings(out)
	return out
}

// resolveFrom replays the peer's operations this replica has not seen.
// Op ids make replay idempotent: already-applied entries are skipped.
func (r *replica) resolveFrom(peer *replica) int {
	seen := map[uint64]bool{}
	for _, e := range r.logEntries() {
		seen[e.id] = true
	}
	applied := 0
	for _, e := range peer.logEntries() {
		if seen[e.id] {
			continue
		}
		if err := r.apply(e, false); err != nil {
			log.Fatal(err)
		}
		applied++
	}
	return applied
}

func main() {
	dir, err := os.MkdirTemp("", "rvm-resolve-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	a := openReplica(dir, "serverA", 0)
	b := openReplica(dir, "serverB", 1)

	// Connected phase: both replicas see the same operations.  Replica A
	// originates even op ids, B odd ones, so ids never collide.
	a.do(opCreate, "README", 100)
	b.resolveFrom(a)
	b.do(opCreate, "src", 101)
	a.resolveFrom(b)
	fmt.Println("connected: both replicas hold", a.list())

	// Partition: each side diverges independently.
	fmt.Println("-- network partition --")
	a.do(opCreate, "notes-from-A", 200)
	a.do(opRemove, "README", 0)
	b.do(opCreate, "patch-from-B", 300)
	fmt.Println("A during partition:", a.list())
	fmt.Println("B during partition:", b.list())

	// Replica A crashes during the partition and recovers: its directory
	// and resolution log come back together, still consistent.
	a = openReplica(dir, "serverA", 0)
	fmt.Println("A after crash+recovery:", a.list())

	// Partition heals: log-based resolution, both directions.
	fmt.Println("-- partition heals --")
	na := a.resolveFrom(b)
	nb := b.resolveFrom(a)
	fmt.Printf("A replayed %d missed op(s); B replayed %d\n", na, nb)
	fmt.Println("A resolved:", a.list())
	fmt.Println("B resolved:", b.list())
	same := fmt.Sprint(a.list()) == fmt.Sprint(b.list())
	fmt.Println("replicas identical:", same)
}
