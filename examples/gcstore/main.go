// Gcstore: a persistent, garbage-collected object store — the use of RVM
// that §8 of the paper cites from O'Toole, Nettles & Gifford: RVM
// segments as the stable from-space and to-space of a collected heap.
//
// The demo builds a linked structure of versioned documents, drops
// references to old versions (creating garbage), runs a copying
// collection whose space flip commits as ONE RVM transaction, crashes,
// and shows the compacted heap surviving recovery.
//
// Run:
//
//	go run ./examples/gcstore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/gcheap"
)

const spacePages = 4

func page(n int) int64 { return int64(n) * int64(rvm.PageSize) }

func open(dir string, format bool) (*rvm.RVM, *gcheap.Heap) {
	db, err := rvm.Open(rvm.Options{LogPath: filepath.Join(dir, "gc.log")})
	if err != nil {
		log.Fatal(err)
	}
	segPath := filepath.Join(dir, "gc.seg")
	meta, err := db.Map(segPath, 0, page(1))
	if err != nil {
		log.Fatal(err)
	}
	s0, err := db.Map(segPath, page(1), page(spacePages))
	if err != nil {
		log.Fatal(err)
	}
	s1, err := db.Map(segPath, page(1+spacePages), page(spacePages))
	if err != nil {
		log.Fatal(err)
	}
	var h *gcheap.Heap
	if format {
		h, err = gcheap.Format(db, meta, s0, s1)
	} else {
		h, err = gcheap.Attach(db, meta, s0, s1)
	}
	if err != nil {
		log.Fatal(err)
	}
	return db, h
}

// addVersion allocates a new document version whose ref[0] links the
// previous head version, and reroots the heap at it.
func addVersion(db *rvm.RVM, h *gcheap.Heap, text string) gcheap.Ref {
	tx, err := db.Begin(rvm.Restore)
	if err != nil {
		log.Fatal(err)
	}
	obj, err := h.Alloc(tx, len(text), []gcheap.Ref{h.Root()})
	if err != nil {
		log.Fatal(err)
	}
	if err := h.WritePayload(tx, obj, 0, []byte(text)); err != nil {
		log.Fatal(err)
	}
	if err := h.SetRoot(tx, obj); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		log.Fatal(err)
	}
	return obj
}

// truncateHistory keeps only the newest keep versions reachable.
func truncateHistory(db *rvm.RVM, h *gcheap.Heap, keep int) {
	tx, err := db.Begin(rvm.Restore)
	if err != nil {
		log.Fatal(err)
	}
	cur := h.Root()
	for i := 1; i < keep && cur != 0; i++ {
		refs, err := h.Refs(cur)
		if err != nil {
			log.Fatal(err)
		}
		cur = refs[0]
	}
	if cur != 0 {
		if err := h.SetRef(tx, cur, 0, 0); err != nil { // cut the chain
			log.Fatal(err)
		}
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		log.Fatal(err)
	}
}

func show(h *gcheap.Heap, label string) {
	st, err := h.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %4d live objects, %6d live bytes, %6d/%d space bytes used, %d GC(s)\n",
		label, st.LiveObjs, st.LiveBytes, st.UsedBytes, st.SpaceBytes, st.GCs)
}

func main() {
	dir, err := os.MkdirTemp("", "rvm-gcstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := rvm.CreateLog(filepath.Join(dir, "gc.log"), 1<<22); err != nil {
		log.Fatal(err)
	}
	if err := rvm.CreateSegment(filepath.Join(dir, "gc.seg"), 1, page(1+2*spacePages)); err != nil {
		log.Fatal(err)
	}

	db, h := open(dir, true)
	for i := 1; i <= 40; i++ {
		addVersion(db, h, fmt.Sprintf("document contents, revision %02d", i))
	}
	show(h, "after 40 revisions:")

	truncateHistory(db, h, 3)
	show(h, "history cut to 3:")

	copied, err := h.GC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GC copied %d live objects and flipped spaces in one transaction\n", copied)
	show(h, "after GC:")

	// Crash (no Close); recovery must land on the flipped, compacted heap.
	_, h2 := open(dir, false)
	show(h2, "after crash+recovery:")
	p, err := h2.Payload(h2.Root())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("newest revision: %q\n", p)
}
