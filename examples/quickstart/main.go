// Quickstart: the smallest complete RVM program.
//
// It creates a log and a segment, maps a region, commits a transaction,
// demonstrates abort, simulates a crash, and shows that recovery restores
// exactly the committed state.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	rvm "github.com/rvm-go/rvm"
)

func main() {
	dir, err := os.MkdirTemp("", "rvm-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "quickstart.log")
	segPath := filepath.Join(dir, "quickstart.seg")

	// One-time setup: a write-ahead log and an external data segment.
	if err := rvm.CreateLog(logPath, 1<<20); err != nil {
		log.Fatal(err)
	}
	if err := rvm.CreateSegment(segPath, 1, 1<<16); err != nil {
		log.Fatal(err)
	}

	// Open performs crash recovery (a no-op on a fresh log).
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		log.Fatal(err)
	}

	// Map a page-aligned region; its memory is the committed image.
	reg, err := db.Map(segPath, 0, int64(rvm.PageSize))
	if err != nil {
		log.Fatal(err)
	}

	// A committed transaction: declare the range, mutate memory, commit.
	tx, err := db.Begin(rvm.Restore)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.SetRange(reg, 0, 32); err != nil {
		log.Fatal(err)
	}
	copy(reg.Data(), "committed and therefore durable")
	if err := tx.Commit(rvm.Flush); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed: %q\n", reg.Data()[:31])

	// An aborted transaction: memory is restored in place.
	tx2, err := db.Begin(rvm.Restore)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx2.Modify(reg, 0, []byte("scribble scribble scribble!!!!!")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before abort: %q\n", reg.Data()[:31])
	if err := tx2.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after abort:  %q\n", reg.Data()[:31])

	// A transaction that never commits — then a crash.  We simply drop
	// the handle without Close, exactly what a kill -9 leaves behind.
	//rvmcheck:allow txlifecycle -- leaking the handle IS this example: it simulates the crash
	tx3, err := db.Begin(rvm.Restore)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx3.Modify(reg, 0, []byte("uncommitted, must not survive!!")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at crash:     %q\n", reg.Data()[:31])
	// (crash: the process state vanishes; the files remain)

	// Restart: recovery replays the log tail-to-head.
	db2, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	reg2, err := db2.Map(segPath, 0, int64(rvm.PageSize))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered:    %q\n", reg2.Data()[:31])
	st := db2.Stats()
	fmt.Printf("recovery ran: %d pass(es), %d byte(s) applied\n",
		st.Recoveries, st.RecoveredBytes)
}
