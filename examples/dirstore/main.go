// Dirstore: Coda-server-style directory meta-data in recoverable memory.
//
// This is the role RVM was built for (paper §2.2): the meta-data of a
// storage repository — directories, replica-control state, housekeeping —
// lives in recoverable memory on a server, while file contents stay in
// ordinary files.  Directory operations are manipulations of in-memory
// data structures bracketed by transactions; crash recovery restores them
// in situ, and the "salvager" has almost nothing to do.
//
// The store keeps a fixed-size table of directory entries inside an rds
// heap.  Each entry block holds a name and a file id.  The demo creates
// entries, renames one, removes one, crashes mid-transaction, and shows
// the recovered directory.
//
// Run:
//
//	go run ./examples/dirstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
	"github.com/rvm-go/rvm/segloader"
)

// dirStore is a single directory: a linked list of entries in an rds
// heap, anchored at the heap root.
type dirStore struct {
	db   *rvm.RVM
	heap *rds.Heap
}

// Entry block layout: [8 next][8 fid][2 nameLen][name...]
func encodeEntry(b []byte, next rds.Offset, fid uint64, name string) {
	binary.BigEndian.PutUint64(b[0:], uint64(next))
	binary.BigEndian.PutUint64(b[8:], fid)
	binary.BigEndian.PutUint16(b[16:], uint16(len(name)))
	copy(b[18:], name)
}

func decodeEntry(b []byte) (next rds.Offset, fid uint64, name string) {
	next = rds.Offset(binary.BigEndian.Uint64(b[0:]))
	fid = binary.BigEndian.Uint64(b[8:])
	n := binary.BigEndian.Uint16(b[16:])
	return next, fid, string(b[18 : 18+n])
}

// create adds a directory entry atomically.
func (d *dirStore) create(name string, fid uint64) error {
	tx, err := d.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	size := int64(18 + len(name))
	block, err := d.heap.Alloc(tx, size)
	if err != nil {
		tx.Abort()
		return err
	}
	b, _ := d.heap.Bytes(block)
	if err := d.heap.SetRange(tx, block, 0, size); err != nil {
		tx.Abort()
		return err
	}
	encodeEntry(b, d.heap.Root(), fid, name)
	if err := d.heap.SetRoot(tx, block); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(rvm.Flush)
}

// lookup finds an entry block by name.
func (d *dirStore) lookup(name string) (block, prev rds.Offset, fid uint64, ok bool) {
	prev = 0
	for cur := d.heap.Root(); cur != 0; {
		b, err := d.heap.Bytes(cur)
		if err != nil {
			return 0, 0, 0, false
		}
		next, f, n := decodeEntry(b)
		if n == name {
			return cur, prev, f, true
		}
		prev, cur = cur, next
	}
	return 0, 0, 0, false
}

// remove deletes an entry atomically.
func (d *dirStore) remove(name string) error {
	block, prev, _, ok := d.lookup(name)
	if !ok {
		return fmt.Errorf("dirstore: %q not found", name)
	}
	tx, err := d.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	b, _ := d.heap.Bytes(block)
	next, _, _ := decodeEntry(b)
	if prev == 0 {
		if err := d.heap.SetRoot(tx, next); err != nil {
			tx.Abort()
			return err
		}
	} else {
		pb, _ := d.heap.Bytes(prev)
		if err := d.heap.SetRange(tx, prev, 0, 8); err != nil {
			tx.Abort()
			return err
		}
		binary.BigEndian.PutUint64(pb[0:], uint64(next))
	}
	if err := d.heap.Free(tx, block); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(rvm.Flush)
}

// list returns all entries sorted by name.
func (d *dirStore) list() []string {
	var out []string
	for cur := d.heap.Root(); cur != 0; {
		b, err := d.heap.Bytes(cur)
		if err != nil {
			break
		}
		next, fid, name := decodeEntry(b)
		out = append(out, fmt.Sprintf("%-12s fid=%d", name, fid))
		cur = next
	}
	sort.Strings(out)
	return out
}

func open(dir string) (*dirStore, *rvm.RVM) {
	db, err := rvm.Open(rvm.Options{LogPath: filepath.Join(dir, "server.log")})
	if err != nil {
		log.Fatal(err)
	}
	ld, err := segloader.Open(db, filepath.Join(dir, "loadmap"))
	if err != nil {
		log.Fatal(err)
	}
	if err := ld.Ensure(segloader.Spec{
		Name:    "directory",
		SegPath: filepath.Join(dir, "dir.seg"),
		SegID:   1,
		Length:  4 * int64(rvm.PageSize),
	}); err != nil {
		log.Fatal(err)
	}
	reg, err := ld.Load("directory")
	if err != nil {
		log.Fatal(err)
	}
	heap, err := rds.Attach(db, reg)
	if err != nil {
		// First run: format the heap.
		heap, err = rds.Format(db, reg)
		if err != nil {
			log.Fatal(err)
		}
	}
	return &dirStore{db: db, heap: heap}, db
}

func main() {
	dir, err := os.MkdirTemp("", "rvm-dirstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := rvm.CreateLog(filepath.Join(dir, "server.log"), 1<<20); err != nil {
		log.Fatal(err)
	}

	d, _ := open(dir)
	for i, name := range []string{"README", "Makefile", "src", "doc", "tmp"} {
		if err := d.create(name, uint64(1000+i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := d.remove("tmp"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("directory after setup:")
	for _, e := range d.list() {
		fmt.Println("  " + e)
	}

	// Crash in the middle of an update: allocate an entry, never commit.
	tx, err := d.db.Begin(rvm.Restore)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.heap.Alloc(tx, 64); err != nil {
		log.Fatal(err)
	}
	// (kill -9 here: drop everything without commit or close)

	// Server restart: recovery restores the directory in situ.  The
	// "salvager" is just the heap consistency check.
	d2, db2 := open(dir)
	defer db2.Close()
	if err := d2.heap.Check(); err != nil {
		log.Fatalf("salvage found corruption: %v", err)
	}
	fmt.Println("directory after crash + recovery (salvage clean):")
	for _, e := range d2.list() {
		fmt.Println("  " + e)
	}
	st, _ := d2.heap.Stats()
	fmt.Printf("heap: %d live bytes, %d allocs, %d frees\n",
		st.LiveBytes, st.Allocs, st.Frees)
}
