// Kvstore: a durable key-value store assembled entirely from this
// repository's layers — rbtree for the index, rds for value storage,
// segloader for stable mapping, rvmlock for serializability, rvm for
// transactions — the "object-oriented repository" composition §1 of the
// paper motivates.
//
// Each Set allocates the value bytes in the heap and indexes the block
// offset in the B+ tree, all in ONE transaction: the allocation, the
// value write, and the index insertion commit or vanish together.  The
// demo sets keys from concurrent writers under the lock manager, crashes
// mid-flight, recovers, and scans a key range.
//
// Run:
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rbtree"
	"github.com/rvm-go/rvm/rds"
	"github.com/rvm-go/rvm/rvmlock"
	"github.com/rvm-go/rvm/segloader"
)

type store struct {
	db    *rvm.RVM
	heap  *rds.Heap
	tree  *rbtree.Tree
	locks *rvmlock.Manager
}

func open(dir string) *store {
	db, err := rvm.Open(rvm.Options{LogPath: filepath.Join(dir, "kv.log")})
	if err != nil {
		log.Fatal(err)
	}
	ld, err := segloader.Open(db, filepath.Join(dir, "loadmap"))
	if err != nil {
		log.Fatal(err)
	}
	if err := ld.Ensure(segloader.Spec{
		Name:    "kv",
		SegPath: filepath.Join(dir, "kv.seg"),
		SegID:   1,
		Length:  64 * int64(rvm.PageSize),
	}); err != nil {
		log.Fatal(err)
	}
	reg, err := ld.Load("kv")
	if err != nil {
		log.Fatal(err)
	}
	s := &store{db: db, locks: rvmlock.NewManager()}
	s.heap, err = rds.Attach(db, reg)
	if err != nil {
		// First run: format heap + create tree, anchored at the heap root.
		s.heap, err = rds.Format(db, reg)
		if err != nil {
			log.Fatal(err)
		}
		tx, err := db.Begin(rvm.Restore)
		if err != nil {
			log.Fatal(err)
		}
		s.tree, err = rbtree.Create(db, s.heap, tx)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.heap.SetRoot(tx, s.tree.Anchor()); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(rvm.Flush); err != nil {
			log.Fatal(err)
		}
		return s
	}
	s.tree, err = rbtree.Open(db, s.heap, s.heap.Root())
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// set writes key=value durably and serializably.  The lock covers the
// whole store: the B+ tree and the heap are shared structures, so the
// "granularity appropriate to the abstraction" (§3.1) is the store, not
// the key — per-key locks would let two writers race on the same tree
// node even when their keys differ.
func (s *store) set(key string, value []byte) error {
	lk := s.locks.Begin()
	defer lk.Release()
	if err := lk.Acquire("store", rvmlock.Exclusive); err != nil {
		return err
	}
	tx, err := s.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	fail := func(e error) error { tx.Abort(); return e }

	// Free the old value block, if any.
	if old, ok, err := s.tree.Get([]byte(key)); err != nil {
		return fail(err)
	} else if ok {
		if err := s.heap.Free(tx, rds.Offset(old)); err != nil {
			return fail(err)
		}
	}
	// Value block: [4 len][bytes].
	block, err := s.heap.Alloc(tx, int64(4+len(value)))
	if err != nil {
		return fail(err)
	}
	b, _ := s.heap.Bytes(block)
	if err := s.heap.SetRange(tx, block, 0, int64(4+len(value))); err != nil {
		return fail(err)
	}
	binary.BigEndian.PutUint32(b, uint32(len(value)))
	copy(b[4:], value)
	if _, err := s.tree.Put(tx, []byte(key), uint64(block)); err != nil {
		return fail(err)
	}
	return tx.Commit(rvm.Flush)
}

// get reads a value.  Readers share the store lock.
func (s *store) get(key string) ([]byte, bool) {
	lk := s.locks.Begin()
	defer lk.Release()
	if err := lk.Acquire("store", rvmlock.Shared); err != nil {
		return nil, false
	}
	off, ok, err := s.tree.Get([]byte(key))
	if err != nil || !ok {
		return nil, false
	}
	b, err := s.heap.Bytes(rds.Offset(off))
	if err != nil {
		return nil, false
	}
	n := binary.BigEndian.Uint32(b)
	return append([]byte(nil), b[4:4+n]...), true
}

func main() {
	dir, err := os.MkdirTemp("", "rvm-kvstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := rvm.CreateLog(filepath.Join(dir, "kv.log"), 1<<22); err != nil {
		log.Fatal(err)
	}

	s := open(dir)
	// Concurrent writers, serialized by the lock manager.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("user:%04d", (w*25+i)%60) // overlapping keys
				val := fmt.Sprintf("writer-%d-iteration-%d", w, i)
				if err := s.set(key, []byte(val)); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	st, _ := s.heap.Stats()
	fmt.Printf("after 100 concurrent sets: %d keys, heap %d live bytes, %d allocs / %d frees\n",
		s.tree.Len(), st.LiveBytes, st.Allocs, st.Frees)

	// Crash (no Close) and recover.
	s2 := open(dir)
	if err := s2.tree.Check(); err != nil {
		log.Fatalf("index corrupt after crash: %v", err)
	}
	if err := s2.heap.Check(); err != nil {
		log.Fatalf("heap corrupt after crash: %v", err)
	}
	fmt.Printf("after crash+recovery: %d keys, index and heap verify clean\n", s2.tree.Len())

	fmt.Println("range scan user:0005 .. user:0010 =>")
	s2.tree.Ascend([]byte("user:0005"), []byte("user:0010"), func(k []byte, v uint64) bool {
		val, _ := s2.get(string(k))
		fmt.Printf("  %s = %q\n", k, val)
		return true
	})
}
