// Bank: a TPC-A-style ledger on RVM — the workload of the paper's §7.1.
//
// Accounts, teller and branch balances, and an audit trail all live in
// recoverable memory.  Each transfer updates an account, the teller and
// branch balances, and appends an audit record, atomically.  The example
// runs a burst of transfers (mixing flush and no-flush commits), aborts
// one, crashes, and verifies the invariant that money is conserved.
//
// Run:
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	rvm "github.com/rvm-go/rvm"
)

const (
	nAccounts   = 1024
	acctSize    = 128 // paper: accounts are 128-byte records
	auditSize   = 64  // paper: audit records are 64-byte records
	nAuditSlots = 512
	initBalance = 1000
)

// Layout inside one segment (all page-aligned regions):
//
//	region 0: accounts    nAccounts * acctSize
//	region 1: audit trail nAuditSlots * auditSize + cursor
//	region 2: teller/branch balances
type bank struct {
	db       *rvm.RVM
	accounts *rvm.Region
	audit    *rvm.Region
	totals   *rvm.Region
}

func pageRound(n int64) int64 {
	ps := int64(rvm.PageSize)
	return (n + ps - 1) / ps * ps
}

func openBank(logPath, segPath string) (*bank, error) {
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		return nil, err
	}
	b := &bank{db: db}
	acctLen := pageRound(nAccounts * acctSize)
	auditLen := pageRound(nAuditSlots*auditSize + 8)
	if b.accounts, err = db.Map(segPath, 0, acctLen); err != nil {
		return nil, err
	}
	if b.audit, err = db.Map(segPath, acctLen, auditLen); err != nil {
		return nil, err
	}
	if b.totals, err = db.Map(segPath, acctLen+auditLen, int64(rvm.PageSize)); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *bank) balance(i int) int64 {
	return int64(binary.BigEndian.Uint64(b.accounts.Data()[i*acctSize:]))
}

// initialize seeds every account with the starting balance, in one
// transaction.
func (b *bank) initialize() error {
	if b.balance(0) != 0 {
		return nil // already initialized on a previous run
	}
	tx, err := b.db.Begin(rvm.NoRestore) // bulk load: never aborted
	if err != nil {
		return err
	}
	if err := tx.SetRange(b.accounts, 0, b.accounts.Length()); err != nil {
		return err
	}
	for i := 0; i < nAccounts; i++ {
		binary.BigEndian.PutUint64(b.accounts.Data()[i*acctSize:], initBalance)
	}
	if err := tx.SetRange(b.totals, 0, 16); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(b.totals.Data(), nAccounts*initBalance) // branch total
	return tx.Commit(rvm.Flush)
}

// transfer moves amount from one account to another and logs an audit
// record, all in one transaction.  from and to must differ (a self-
// transfer would read the same balance twice and mint money).
func (b *bank) transfer(from, to int, amount int64, mode rvm.CommitMode) error {
	if from == to {
		to = (to + 1) % nAccounts
	}
	tx, err := b.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	abort := func(e error) error { tx.Abort(); return e }

	fromOff := int64(from * acctSize)
	toOff := int64(to * acctSize)
	if err := tx.SetRange(b.accounts, fromOff, 8); err != nil {
		return abort(err)
	}
	if err := tx.SetRange(b.accounts, toOff, 8); err != nil {
		return abort(err)
	}
	fb := int64(binary.BigEndian.Uint64(b.accounts.Data()[fromOff:]))
	if fb < amount {
		tx.Abort() // insufficient funds: the abort path in earnest
		return fmt.Errorf("insufficient funds in %d", from)
	}
	tb := int64(binary.BigEndian.Uint64(b.accounts.Data()[toOff:]))
	binary.BigEndian.PutUint64(b.accounts.Data()[fromOff:], uint64(fb-amount))
	binary.BigEndian.PutUint64(b.accounts.Data()[toOff:], uint64(tb+amount))

	// Audit trail: sequential with wraparound, like the paper's.
	cursorOff := int64(nAuditSlots * auditSize)
	if err := tx.SetRange(b.audit, cursorOff, 8); err != nil {
		return abort(err)
	}
	slot := binary.BigEndian.Uint64(b.audit.Data()[cursorOff:]) % nAuditSlots
	recOff := int64(slot) * auditSize
	if err := tx.SetRange(b.audit, recOff, auditSize); err != nil {
		return abort(err)
	}
	rec := b.audit.Data()[recOff:]
	binary.BigEndian.PutUint64(rec[0:], uint64(from))
	binary.BigEndian.PutUint64(rec[8:], uint64(to))
	binary.BigEndian.PutUint64(rec[16:], uint64(amount))
	binary.BigEndian.PutUint64(b.audit.Data()[cursorOff:], slot+1)

	return tx.Commit(mode)
}

// totalMoney sums all account balances.
func (b *bank) totalMoney() int64 {
	var sum int64
	for i := 0; i < nAccounts; i++ {
		sum += b.balance(i)
	}
	return sum
}

func main() {
	dir, err := os.MkdirTemp("", "rvm-bank-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "bank.log")
	segPath := filepath.Join(dir, "bank.seg")

	segLen := pageRound(nAccounts*acctSize) + pageRound(nAuditSlots*auditSize+8) + int64(rvm.PageSize)
	if err := rvm.CreateLog(logPath, 1<<22); err != nil {
		log.Fatal(err)
	}
	if err := rvm.CreateSegment(segPath, 1, segLen); err != nil {
		log.Fatal(err)
	}

	b, err := openBank(logPath, segPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := b.initialize(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bank open: %d accounts, total money %d\n", nAccounts, b.totalMoney())

	// A burst of random transfers.  Every third commit is a no-flush
	// ("lazy") transaction; a periodic Flush bounds their persistence.
	rng := rand.New(rand.NewSource(1))
	committed := 0
	for i := 0; i < 500; i++ {
		from, to := rng.Intn(nAccounts), rng.Intn(nAccounts)
		mode := rvm.Flush
		if i%3 != 0 {
			mode = rvm.NoFlush
		}
		if err := b.transfer(from, to, int64(1+rng.Intn(50)), mode); err == nil {
			committed++
		}
		if i%100 == 99 {
			if err := b.db.Flush(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := b.db.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d transfers; total money %d (conserved: %v)\n",
		committed, b.totalMoney(), b.totalMoney() == nAccounts*initBalance)

	st := b.db.Stats()
	fmt.Printf("log traffic: %d bytes; intra-tx saved %d, inter-tx saved %d\n",
		st.LogBytes, st.IntraSavedBytes, st.InterSavedBytes)

	// Crash (no Close) and recover.
	b2, err := openBank(logPath, segPath)
	if err != nil {
		log.Fatal(err)
	}
	defer b2.db.Close()
	fmt.Printf("after crash+recovery: total money %d (conserved: %v)\n",
		b2.totalMoney(), b2.totalMoney() == nAccounts*initBalance)
}
