// Twophase: distributed transactions over RVM (paper §8) across three
// in-process "sites", each with its own log, data segment, and
// pending-prepare heap.
//
// The demo runs a successful two-phase commit, then one that aborts
// because a site votes no (compensating transactions roll the others
// back), then a coordinator outage between the decision and delivery,
// repaired by RetryPending.
//
// Run:
//
//	go run ./examples/twophase
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
	"github.com/rvm-go/rvm/rvmdist"
)

type site struct {
	name string
	db   *rvm.RVM
	data *rvm.Region
	sub  *rvmdist.Subordinate
}

func newSite(base, name string) *site {
	dir := filepath.Join(base, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	logPath := filepath.Join(dir, "site.log")
	dataSeg := filepath.Join(dir, "data.seg")
	metaSeg := filepath.Join(dir, "meta.seg")
	ps := int64(rvm.PageSize)
	if err := rvm.CreateLog(logPath, 1<<20); err != nil {
		log.Fatal(err)
	}
	if err := rvm.CreateSegment(dataSeg, 1, ps); err != nil {
		log.Fatal(err)
	}
	if err := rvm.CreateSegment(metaSeg, 2, 2*ps); err != nil {
		log.Fatal(err)
	}
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		log.Fatal(err)
	}
	data, err := db.Map(dataSeg, 0, ps)
	if err != nil {
		log.Fatal(err)
	}
	meta, err := db.Map(metaSeg, 0, 2*ps)
	if err != nil {
		log.Fatal(err)
	}
	heap, err := rds.Format(db, meta)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := rvmdist.NewSubordinate(db, heap)
	if err != nil {
		log.Fatal(err)
	}
	sub.Register(data)
	return &site{name: name, db: db, data: data, sub: sub}
}

func (s *site) value() string {
	d := s.data.Data()
	n := 0
	for n < len(d) && d[n] != 0 {
		n++
	}
	return string(d[:n])
}

// transport routes the coordinator's upcalls to the in-process sites.
type transport struct {
	sites   map[string]*site
	payload map[string]string // per-gtid value to write
	veto    string            // site that votes no, if any
	offline string            // site unreachable in phase 2, if any
}

func (t *transport) Prepare(site, gtid string) (bool, error) {
	if site == t.veto {
		fmt.Printf("    %s: votes NO on %s\n", site, gtid)
		return false, nil
	}
	s := t.sites[site]
	val := t.payload[gtid] + "@" + site
	return s.sub.Prepare(gtid, func(p *rvmdist.PrepTx) error {
		return p.Modify(s.data, 0, append([]byte(val), 0))
	})
}

func (t *transport) Commit(site, gtid string) error {
	if site == t.offline {
		return fmt.Errorf("site %s unreachable", site)
	}
	return t.sites[site].sub.Commit(gtid)
}

func (t *transport) Abort(site, gtid string) error {
	return t.sites[site].sub.Abort(gtid)
}

func main() {
	base, err := os.MkdirTemp("", "rvm-twophase-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	tr := &transport{sites: map[string]*site{}, payload: map[string]string{}}
	names := []string{"alpha", "beta", "gamma"}
	for _, n := range names {
		tr.sites[n] = newSite(base, n)
	}

	// The coordinator gets its own RVM state for the decision log.
	coDir := filepath.Join(base, "coordinator")
	if err := os.MkdirAll(coDir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := rvm.CreateLog(filepath.Join(coDir, "co.log"), 1<<20); err != nil {
		log.Fatal(err)
	}
	if err := rvm.CreateSegment(filepath.Join(coDir, "meta.seg"), 1, 2*int64(rvm.PageSize)); err != nil {
		log.Fatal(err)
	}
	coDB, err := rvm.Open(rvm.Options{LogPath: filepath.Join(coDir, "co.log")})
	if err != nil {
		log.Fatal(err)
	}
	defer coDB.Close()
	coMeta, err := coDB.Map(filepath.Join(coDir, "meta.seg"), 0, 2*int64(rvm.PageSize))
	if err != nil {
		log.Fatal(err)
	}
	coHeap, err := rds.Format(coDB, coMeta)
	if err != nil {
		log.Fatal(err)
	}
	co, err := rvmdist.NewCoordinator(coDB, coHeap, tr)
	if err != nil {
		log.Fatal(err)
	}

	show := func() {
		for _, n := range names {
			fmt.Printf("    %s: %q\n", n, tr.sites[n].value())
		}
	}

	fmt.Println("== g1: all sites vote yes ==")
	tr.payload["g1"] = "v1"
	if err := co.Run("g1", names); err != nil {
		log.Fatal(err)
	}
	show()

	fmt.Println("== g2: gamma vetoes; compensation restores g1's state ==")
	tr.payload["g2"] = "v2"
	tr.veto = "gamma"
	if err := co.Run("g2", names); err != nil {
		fmt.Printf("    coordinator: %v\n", err)
	}
	tr.veto = ""
	show()

	fmt.Println("== g3: beta offline during phase 2; RetryPending repairs ==")
	tr.payload["g3"] = "v3"
	tr.offline = "beta"
	if err := co.Run("g3", names); err != nil {
		fmt.Printf("    coordinator: %v\n", err)
	}
	fmt.Printf("    beta still pending: %v\n", tr.sites["beta"].sub.Pending())
	tr.offline = ""
	if err := co.RetryPending(); err != nil {
		log.Fatal(err)
	}
	show()
	fmt.Printf("    coordinator pending decisions: %v\n", co.Pending())
}
