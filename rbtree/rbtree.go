// Package rbtree implements a recoverable B+ tree: a sorted index whose
// nodes live in an rds heap inside recoverable virtual memory, so every
// mutation is exactly as atomic and permanent as the enclosing RVM
// transaction.
//
// The paper positions RVM as the meta-data substrate for "distributed
// file systems and databases, object-oriented repositories, CAD tools,
// and CASE tools" (§1); a crash-consistent index over recoverable storage
// is the piece those applications build first.  rbtree is that piece,
// assembled purely from the layers below it: rvm for transactions, rds
// for allocation, stable offsets as the paper's absolute pointers.
//
// Keys are byte strings up to MaxKeyLen; values are opaque uint64 words
// (store rds.Offsets in them to reference larger recoverable objects).
// Leaves are chained for range scans.  Deletion is lazy: entries leave
// their leaf immediately, but nodes are not merged or rebalanced — lookup
// and scan stay correct, and the common meta-data workloads (grow-mostly,
// delete-rarely) never notice.  All mutating operations take the caller's
// transaction, so a directory update, its allocation, and its index
// insertion commit or abort together.
package rbtree

import (
	"bytes"
	"errors"
	"fmt"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
)

const (
	// MaxKeyLen is the largest permitted key.
	MaxKeyLen = 64

	order    = 16        // children per internal node
	maxKeys  = order - 1 // keys per internal node
	maxLeaf  = 16        // entries per leaf
	keySlot  = 2 + MaxKeyLen
	nodeMeta = 8 // [1 flags][1 n][6 pad]

	flagLeaf = 1

	// Node block layout (uniform for both kinds):
	//   [nodeMeta][8 next][children order*8][keys order*keySlot][values maxLeaf*8]
	offNext     = nodeMeta
	offChildren = offNext + 8
	offKeys     = offChildren + order*8
	offValues   = offKeys + order*keySlot
	nodeSize    = offValues + maxLeaf*8

	// Anchor block: [8 root][8 count][8 height]
	anchorSize = 24
)

// Errors returned by the tree.
var (
	ErrKeyTooLong = errors.New("rbtree: key exceeds MaxKeyLen")
	ErrEmptyKey   = errors.New("rbtree: empty key")
	ErrCorrupt    = errors.New("rbtree: node invariant violated")
)

// Tree is an attached recoverable B+ tree.
type Tree struct {
	db     *rvm.RVM
	heap   *rds.Heap
	anchor rds.Offset
}

// Create allocates a new empty tree in heap, inside tx, and returns it.
// Persist t.Anchor() somewhere reachable (e.g. the heap root) to reopen
// the tree later.
func Create(db *rvm.RVM, heap *rds.Heap, tx *rvm.Tx) (*Tree, error) {
	anchor, err := heap.Alloc(tx, anchorSize)
	if err != nil {
		return nil, err
	}
	t := &Tree{db: db, heap: heap, anchor: anchor}
	root, err := t.allocNode(tx, true)
	if err != nil {
		return nil, err
	}
	if err := t.setAnchor(tx, root, 0, 1); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree at anchor.
func Open(db *rvm.RVM, heap *rds.Heap, anchor rds.Offset) (*Tree, error) {
	b, err := heap.Bytes(anchor)
	if err != nil {
		return nil, fmt.Errorf("rbtree: bad anchor: %w", err)
	}
	if len(b) < anchorSize {
		return nil, fmt.Errorf("%w: anchor block too small", ErrCorrupt)
	}
	return &Tree{db: db, heap: heap, anchor: anchor}, nil
}

// Anchor returns the tree's anchor offset, stable across restarts.
func (t *Tree) Anchor() rds.Offset { return t.anchor }

// ---------------------------------------------------------------------------
// Low-level node access.
// ---------------------------------------------------------------------------

func be64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 | uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
func putBE64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func (t *Tree) anchorBytes() []byte {
	b, err := t.heap.Bytes(t.anchor)
	if err != nil {
		panic(fmt.Sprintf("rbtree: anchor vanished: %v", err))
	}
	return b
}

// Root returns the current root node offset.
func (t *Tree) root() rds.Offset { return rds.Offset(be64(t.anchorBytes())) }

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return int(be64(t.anchorBytes()[8:])) }

// Height returns the number of node levels.
func (t *Tree) Height() int { return int(be64(t.anchorBytes()[16:])) }

func (t *Tree) setAnchor(tx *rvm.Tx, root rds.Offset, count, height uint64) error {
	if err := t.heap.SetRange(tx, t.anchor, 0, anchorSize); err != nil {
		return err
	}
	b := t.anchorBytes()
	putBE64(b, uint64(root))
	putBE64(b[8:], count)
	putBE64(b[16:], height)
	return nil
}

func (t *Tree) bumpCount(tx *rvm.Tx, delta int64) error {
	if err := t.heap.SetRange(tx, t.anchor, 8, 8); err != nil {
		return err
	}
	b := t.anchorBytes()
	putBE64(b[8:], uint64(int64(be64(b[8:]))+delta))
	return nil
}

// node is a decoded view over a block's bytes (aliasing region memory).
type node struct {
	off rds.Offset
	b   []byte
}

func (t *Tree) load(off rds.Offset) (node, error) {
	b, err := t.heap.Bytes(off)
	if err != nil {
		return node{}, err
	}
	if len(b) < nodeSize {
		return node{}, fmt.Errorf("%w: node block too small", ErrCorrupt)
	}
	return node{off: off, b: b}, nil
}

func (n node) leaf() bool       { return n.b[0]&flagLeaf != 0 }
func (n node) count() int       { return int(n.b[1]) }
func (n node) setCount(c int)   { n.b[1] = byte(c) }
func (n node) next() rds.Offset { return rds.Offset(be64(n.b[offNext:])) }

func (n node) key(i int) []byte {
	s := n.b[offKeys+i*keySlot:]
	kl := int(s[0])<<8 | int(s[1])
	return s[2 : 2+kl]
}

func (n node) setKey(i int, k []byte) {
	s := n.b[offKeys+i*keySlot:]
	s[0], s[1] = byte(len(k)>>8), byte(len(k))
	copy(s[2:2+MaxKeyLen], k)
}

func (n node) child(i int) rds.Offset       { return rds.Offset(be64(n.b[offChildren+i*8:])) }
func (n node) setChild(i int, c rds.Offset) { putBE64(n.b[offChildren+i*8:], uint64(c)) }

func (n node) value(i int) uint64       { return be64(n.b[offValues+i*8:]) }
func (n node) setValue(i int, v uint64) { putBE64(n.b[offValues+i*8:], v) }

// cover declares the whole node in tx (node edits shift many slots;
// covering the block keeps the code simple and the intra-transaction
// optimizer coalesces overlapping covers for free).
func (t *Tree) cover(tx *rvm.Tx, n node) error {
	return t.heap.SetRange(tx, n.off, 0, nodeSize)
}

func (t *Tree) allocNode(tx *rvm.Tx, leaf bool) (rds.Offset, error) {
	off, err := t.heap.Alloc(tx, nodeSize)
	if err != nil {
		return 0, err
	}
	n, err := t.load(off)
	if err != nil {
		return 0, err
	}
	// Alloc zeroes and covers the payload already.
	if leaf {
		n.b[0] = flagLeaf
	}
	return off, nil
}

// search returns the position of key within the node's keys and whether
// it is an exact match.
func (n node) search(key []byte) (int, bool) {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.key(mid), key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// ---------------------------------------------------------------------------
// Lookup and scans.
// ---------------------------------------------------------------------------

// Get returns the value for key.
func (t *Tree) Get(key []byte) (uint64, bool, error) {
	if err := checkKey(key); err != nil {
		return 0, false, err
	}
	n, err := t.findLeaf(key)
	if err != nil {
		return 0, false, err
	}
	i, ok := n.search(key)
	if !ok {
		return 0, false, nil
	}
	return n.value(i), true, nil
}

// findLeaf descends to the leaf that would hold key.
func (t *Tree) findLeaf(key []byte) (node, error) {
	n, err := t.load(t.root())
	if err != nil {
		return node{}, err
	}
	for !n.leaf() {
		i, exact := n.search(key)
		if exact {
			i++ // routing keys equal to the search key route right
		}
		n, err = t.load(n.child(i))
		if err != nil {
			return node{}, err
		}
	}
	return n, nil
}

// Ascend calls fn for every (key, value) with from <= key < to, in key
// order.  A nil `to` means "to the end"; a nil `from` means "from the
// start".  fn must not mutate the tree; returning false stops the scan.
func (t *Tree) Ascend(from, to []byte, fn func(key []byte, value uint64) bool) error {
	start := from
	if start == nil {
		start = []byte{}
	}
	n, err := t.findLeaf(start)
	if err != nil {
		return err
	}
	i, _ := n.search(start)
	for {
		for ; i < n.count(); i++ {
			k := n.key(i)
			if to != nil && bytes.Compare(k, to) >= 0 {
				return nil
			}
			if !fn(append([]byte(nil), k...), n.value(i)) {
				return nil
			}
		}
		nx := n.next()
		if nx == 0 {
			return nil
		}
		n, err = t.load(nx)
		if err != nil {
			return err
		}
		i = 0
	}
}

// ---------------------------------------------------------------------------
// Insertion.
// ---------------------------------------------------------------------------

func checkKey(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w: %d bytes", ErrKeyTooLong, len(key))
	}
	return nil
}

// Put inserts or updates key under tx.  It reports whether the key was
// newly inserted (false = updated in place).
func (t *Tree) Put(tx *rvm.Tx, key []byte, value uint64) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	root, err := t.load(t.root())
	if err != nil {
		return false, err
	}
	if t.full(root) {
		// Grow: new root with the old root as its only child, then split.
		newRootOff, err := t.allocNode(tx, false)
		if err != nil {
			return false, err
		}
		newRoot, err := t.load(newRootOff)
		if err != nil {
			return false, err
		}
		if err := t.cover(tx, newRoot); err != nil {
			return false, err
		}
		newRoot.setChild(0, root.off)
		if err := t.splitChild(tx, newRoot, 0); err != nil {
			return false, err
		}
		if err := t.setAnchor(tx, newRootOff, uint64(t.Len()), uint64(t.Height()+1)); err != nil {
			return false, err
		}
		root = newRoot
	}
	inserted, err := t.insertNonFull(tx, root, key, value)
	if err != nil {
		return false, err
	}
	if inserted {
		if err := t.bumpCount(tx, 1); err != nil {
			return false, err
		}
	}
	return inserted, nil
}

func (t *Tree) full(n node) bool {
	if n.leaf() {
		return n.count() >= maxLeaf
	}
	return n.count() >= maxKeys
}

// insertNonFull inserts into the subtree at n, which is guaranteed not to
// be full (children are split preemptively on the way down).
func (t *Tree) insertNonFull(tx *rvm.Tx, n node, key []byte, value uint64) (bool, error) {
	for {
		i, exact := n.search(key)
		if n.leaf() {
			if err := t.cover(tx, n); err != nil {
				return false, err
			}
			if exact {
				n.setValue(i, value)
				return false, nil
			}
			// Shift entries right to open slot i.
			for j := n.count(); j > i; j-- {
				n.setKey(j, n.key(j-1))
				n.setValue(j, n.value(j-1))
			}
			n.setKey(i, key)
			n.setValue(i, value)
			n.setCount(n.count() + 1)
			return true, nil
		}
		if exact {
			i++
		}
		child, err := t.load(n.child(i))
		if err != nil {
			return false, err
		}
		if t.full(child) {
			if err := t.splitChild(tx, n, i); err != nil {
				return false, err
			}
			// The split hoisted a key into n at position i; re-route.
			if bytes.Compare(key, n.key(i)) >= 0 {
				i++
			}
			child, err = t.load(n.child(i))
			if err != nil {
				return false, err
			}
		}
		n = child
	}
}

// splitChild splits the full child at index i of parent, hoisting a
// routing key into the parent (which must have room).
func (t *Tree) splitChild(tx *rvm.Tx, parent node, i int) error {
	child, err := t.load(parent.child(i))
	if err != nil {
		return err
	}
	rightOff, err := t.allocNode(tx, child.leaf())
	if err != nil {
		return err
	}
	right, err := t.load(rightOff)
	if err != nil {
		return err
	}
	// Reload: the allocation may have grown structures, and we must cover
	// all three nodes before editing.
	if err := t.cover(tx, parent); err != nil {
		return err
	}
	if err := t.cover(tx, child); err != nil {
		return err
	}
	if err := t.cover(tx, right); err != nil {
		return err
	}

	var hoist []byte
	if child.leaf() {
		// B+ leaf split: upper half moves right; the first right key is
		// copied (not moved) up as the routing key; leaves stay chained.
		mid := child.count() / 2
		rc := 0
		for j := mid; j < child.count(); j++ {
			right.setKey(rc, child.key(j))
			right.setValue(rc, child.value(j))
			rc++
		}
		right.setCount(rc)
		child.setCount(mid)
		putBE64(right.b[offNext:], uint64(child.next()))
		putBE64(child.b[offNext:], uint64(rightOff))
		hoist = append([]byte(nil), right.key(0)...)
	} else {
		// Internal split: the median key moves up.
		mid := child.count() / 2
		hoist = append([]byte(nil), child.key(mid)...)
		rc := 0
		for j := mid + 1; j < child.count(); j++ {
			right.setKey(rc, child.key(j))
			rc++
		}
		for j := mid + 1; j <= child.count(); j++ {
			right.setChild(j-mid-1, child.child(j))
		}
		right.setCount(rc)
		child.setCount(mid)
	}

	// Insert hoist + right pointer into the parent at position i.
	for j := parent.count(); j > i; j-- {
		parent.setKey(j, parent.key(j-1))
		parent.setChild(j+1, parent.child(j))
	}
	parent.setKey(i, hoist)
	parent.setChild(i+1, rightOff)
	parent.setCount(parent.count() + 1)
	return nil
}

// ---------------------------------------------------------------------------
// Deletion (lazy).
// ---------------------------------------------------------------------------

// Delete removes key under tx, reporting whether it was present.  Nodes
// are not merged (lazy deletion); see the package comment.
func (t *Tree) Delete(tx *rvm.Tx, key []byte) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	n, err := t.findLeaf(key)
	if err != nil {
		return false, err
	}
	i, ok := n.search(key)
	if !ok {
		return false, nil
	}
	if err := t.cover(tx, n); err != nil {
		return false, err
	}
	for j := i; j < n.count()-1; j++ {
		n.setKey(j, n.key(j+1))
		n.setValue(j, n.value(j+1))
	}
	n.setCount(n.count() - 1)
	if err := t.bumpCount(tx, -1); err != nil {
		return false, err
	}
	return true, nil
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

// Check walks the whole tree validating structural invariants: key order
// within nodes, routing consistency, uniform leaf depth, the leaf chain's
// global order, and the anchor's count.  Run it after crash recovery in
// tests (the "salvager" role).
func (t *Tree) Check() error {
	counted := 0
	var prevLeafKey []byte
	var walk func(off rds.Offset, depth int, lo, hi []byte) (int, error)
	walk = func(off rds.Offset, depth int, lo, hi []byte) (int, error) {
		n, err := t.load(off)
		if err != nil {
			return 0, err
		}
		for i := 0; i < n.count(); i++ {
			k := n.key(i)
			if i > 0 && bytes.Compare(n.key(i-1), k) >= 0 {
				return 0, fmt.Errorf("%w: keys out of order in node %d", ErrCorrupt, off)
			}
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return 0, fmt.Errorf("%w: key below routing bound in node %d", ErrCorrupt, off)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return 0, fmt.Errorf("%w: key above routing bound in node %d", ErrCorrupt, off)
			}
		}
		if n.leaf() {
			for i := 0; i < n.count(); i++ {
				if prevLeafKey != nil && bytes.Compare(prevLeafKey, n.key(i)) >= 0 {
					return 0, fmt.Errorf("%w: leaf chain out of order at node %d", ErrCorrupt, off)
				}
				prevLeafKey = append(prevLeafKey[:0], n.key(i)...)
				counted++
			}
			return depth, nil
		}
		leafDepth := -1
		for i := 0; i <= n.count(); i++ {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.key(i - 1)
			}
			if i < n.count() {
				chi = n.key(i)
			}
			d, err := walk(n.child(i), depth+1, clo, chi)
			if err != nil {
				return 0, err
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if d != leafDepth {
				return 0, fmt.Errorf("%w: leaves at unequal depth under node %d", ErrCorrupt, off)
			}
		}
		return leafDepth, nil
	}
	if _, err := walk(t.root(), 1, nil, nil); err != nil {
		return err
	}
	if counted != t.Len() {
		return fmt.Errorf("%w: anchor count %d, walked %d", ErrCorrupt, t.Len(), counted)
	}
	return nil
}
