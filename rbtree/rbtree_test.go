package rbtree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
)

type fixture struct {
	db      *rvm.RVM
	heap    *rds.Heap
	tree    *Tree
	logPath string
	segPath string
	pages   int
}

func newFixture(t *testing.T, pages int) *fixture {
	t.Helper()
	dir := t.TempDir()
	f := &fixture{
		logPath: filepath.Join(dir, "t.log"),
		segPath: filepath.Join(dir, "t.seg"),
		pages:   pages,
	}
	if err := rvm.CreateLog(f.logPath, 1<<22); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(f.segPath, 1, int64(pages)*int64(rvm.PageSize)); err != nil {
		t.Fatal(err)
	}
	db, err := rvm.Open(rvm.Options{LogPath: f.logPath, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	f.db = db
	t.Cleanup(func() { db.Close() })
	reg, err := db.Map(f.segPath, 0, int64(pages)*int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	heap, err := rds.Format(db, reg)
	if err != nil {
		t.Fatal(err)
	}
	f.heap = heap
	tx, _ := db.Begin(rvm.Restore)
	tree, err := Create(db, heap, tx)
	if err != nil {
		t.Fatal(err)
	}
	if err := heap.SetRoot(tx, tree.Anchor()); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	f.tree = tree
	return f
}

// reopen simulates a crash and re-attaches to the tree via the heap root.
func (f *fixture) reopen(t *testing.T) {
	t.Helper()
	db, err := rvm.Open(rvm.Options{LogPath: f.logPath, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	reg, err := db.Map(f.segPath, 0, int64(f.pages)*int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	heap, err := rds.Attach(db, reg)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Open(db, heap, heap.Root())
	if err != nil {
		t.Fatal(err)
	}
	f.db, f.heap, f.tree = db, heap, tree
}

func (f *fixture) put(t *testing.T, key string, val uint64) {
	t.Helper()
	tx, _ := f.db.Begin(rvm.Restore)
	if _, err := f.tree.Put(tx, []byte(key), val); err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	if err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) del(t *testing.T, key string) bool {
	t.Helper()
	tx, _ := f.db.Begin(rvm.Restore)
	ok, err := f.tree.Delete(tx, []byte(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestPutGetUpdate(t *testing.T) {
	f := newFixture(t, 32)
	f.put(t, "alpha", 1)
	f.put(t, "beta", 2)
	if v, ok, _ := f.tree.Get([]byte("alpha")); !ok || v != 1 {
		t.Fatalf("alpha: %d %v", v, ok)
	}
	f.put(t, "alpha", 99) // update
	if v, _, _ := f.tree.Get([]byte("alpha")); v != 99 {
		t.Fatalf("updated alpha: %d", v)
	}
	if f.tree.Len() != 2 {
		t.Fatalf("Len=%d", f.tree.Len())
	}
	if _, ok, _ := f.tree.Get([]byte("gamma")); ok {
		t.Fatal("phantom key")
	}
}

func TestKeyValidation(t *testing.T) {
	f := newFixture(t, 32)
	tx, _ := f.db.Begin(rvm.Restore)
	defer tx.Commit(rvm.NoFlush)
	if _, err := f.tree.Put(tx, nil, 1); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	long := bytes.Repeat([]byte{'k'}, MaxKeyLen+1)
	if _, err := f.tree.Put(tx, long, 1); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key: %v", err)
	}
	if _, _, err := f.tree.Get(long); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long get: %v", err)
	}
	exact := bytes.Repeat([]byte{'k'}, MaxKeyLen)
	if _, err := f.tree.Put(tx, exact, 1); err != nil {
		t.Fatalf("max-length key rejected: %v", err)
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	f := newFixture(t, 512)
	n := 2000
	for i := 0; i < n; i++ {
		f.put(t, fmt.Sprintf("key-%06d", i), uint64(i))
	}
	if f.tree.Len() != n {
		t.Fatalf("Len=%d", f.tree.Len())
	}
	if f.tree.Height() < 3 {
		t.Fatalf("height %d after %d inserts", f.tree.Height(), n)
	}
	if err := f.tree.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		key := fmt.Sprintf("key-%06d", i)
		if v, ok, _ := f.tree.Get([]byte(key)); !ok || v != uint64(i) {
			t.Fatalf("%s: %d %v", key, v, ok)
		}
	}
}

func TestAscendRange(t *testing.T) {
	f := newFixture(t, 64)
	for i := 0; i < 300; i++ {
		f.put(t, fmt.Sprintf("k%04d", i*2), uint64(i*2)) // even keys
	}
	var got []string
	err := f.tree.Ascend([]byte("k0100"), []byte("k0120"), func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"k0100", "k0102", "k0104", "k0106", "k0108", "k0110", "k0112", "k0114", "k0116", "k0118"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	// Full scan is globally sorted and complete.
	count := 0
	var prev string
	f.tree.Ascend(nil, nil, func(k []byte, v uint64) bool {
		if prev != "" && string(k) <= prev {
			t.Fatalf("scan out of order at %q", k)
		}
		prev = string(k)
		count++
		return true
	})
	if count != 300 {
		t.Fatalf("full scan saw %d", count)
	}
	// Early stop.
	count = 0
	f.tree.Ascend(nil, nil, func(k []byte, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop: %d", count)
	}
}

func TestDelete(t *testing.T) {
	f := newFixture(t, 64)
	for i := 0; i < 500; i++ {
		f.put(t, fmt.Sprintf("d%04d", i), uint64(i))
	}
	for i := 0; i < 500; i += 2 {
		if !f.del(t, fmt.Sprintf("d%04d", i)) {
			t.Fatalf("delete d%04d failed", i)
		}
	}
	if f.del(t, "d0000") {
		t.Fatal("double delete succeeded")
	}
	if f.tree.Len() != 250 {
		t.Fatalf("Len=%d", f.tree.Len())
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := f.tree.Get([]byte(fmt.Sprintf("d%04d", i)))
		if ok != (i%2 == 1) {
			t.Fatalf("d%04d present=%v", i, ok)
		}
	}
	if err := f.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortUndoesTreeMutation(t *testing.T) {
	f := newFixture(t, 64)
	for i := 0; i < 100; i++ {
		f.put(t, fmt.Sprintf("s%03d", i), uint64(i))
	}
	before := f.tree.Len()
	tx, _ := f.db.Begin(rvm.Restore)
	for i := 0; i < 50; i++ {
		if _, err := f.tree.Put(tx, []byte(fmt.Sprintf("abort%03d", i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.tree.Delete(tx, []byte("s000")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if f.tree.Len() != before {
		t.Fatalf("abort leaked: Len=%d want %d", f.tree.Len(), before)
	}
	if _, ok, _ := f.tree.Get([]byte("abort000")); ok {
		t.Fatal("aborted insert visible")
	}
	if _, ok, _ := f.tree.Get([]byte("s000")); !ok {
		t.Fatal("aborted delete took effect")
	}
	if err := f.tree.Check(); err != nil {
		t.Fatalf("tree corrupt after abort: %v", err)
	}
}

func TestCrashRecovery(t *testing.T) {
	f := newFixture(t, 64)
	for i := 0; i < 400; i++ {
		f.put(t, fmt.Sprintf("c%04d", i), uint64(i))
	}
	if err := f.db.Flush(); err != nil {
		t.Fatal(err)
	}
	// An unflushed burst and an uncommitted transaction, then crash.
	f.put(t, "unflushed", 1)
	tx, _ := f.db.Begin(rvm.Restore)
	if _, err := f.tree.Put(tx, []byte("uncommitted"), 1); err != nil {
		t.Fatal(err)
	}
	f.reopen(t)
	if err := f.tree.Check(); err != nil {
		t.Fatalf("tree corrupt after crash: %v", err)
	}
	if f.tree.Len() != 400 {
		t.Fatalf("Len=%d after crash", f.tree.Len())
	}
	for i := 0; i < 400; i += 37 {
		if _, ok, _ := f.tree.Get([]byte(fmt.Sprintf("c%04d", i))); !ok {
			t.Fatalf("c%04d lost", i)
		}
	}
	if _, ok, _ := f.tree.Get([]byte("uncommitted")); ok {
		t.Fatal("uncommitted insert survived crash")
	}
}

// TestRandomizedModel compares the tree against a map + sorted slice
// under random puts, updates, deletes, scans, crashes, and truncations.
func TestRandomizedModel(t *testing.T) {
	f := newFixture(t, 256)
	rng := rand.New(rand.NewSource(77))
	model := map[string]uint64{}
	steps := 3000
	if testing.Short() {
		steps = 400
	}
	for step := 0; step < steps; step++ {
		key := fmt.Sprintf("m%05d", rng.Intn(1200))
		switch r := rng.Intn(100); {
		case r < 60:
			val := rng.Uint64()
			tx, _ := f.db.Begin(rvm.Restore)
			ins, err := f.tree.Put(tx, []byte(key), val)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(rvm.NoFlush); err != nil {
				t.Fatal(err)
			}
			_, existed := model[key]
			if ins == existed {
				t.Fatalf("step %d: Put reported inserted=%v, model existed=%v", step, ins, existed)
			}
			model[key] = val
		case r < 80:
			ok := f.del(t, key)
			_, existed := model[key]
			if ok != existed {
				t.Fatalf("step %d: Delete=%v, model=%v", step, ok, existed)
			}
			delete(model, key)
		case r < 90:
			v, ok, err := f.tree.Get([]byte(key))
			if err != nil {
				t.Fatal(err)
			}
			mv, mok := model[key]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("step %d: Get(%s)=(%d,%v) model (%d,%v)", step, key, v, ok, mv, mok)
			}
		case r < 96 && step%151 == 0:
			if err := f.db.Flush(); err != nil {
				t.Fatal(err)
			}
			f.reopen(t)
		default:
			if step%97 == 0 {
				if err := f.db.Truncate(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if step%500 == 499 {
			if err := f.tree.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Final audit: exact equality with the model via a full scan.
	if f.tree.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", f.tree.Len(), len(model))
	}
	wantKeys := make([]string, 0, len(model))
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	i := 0
	err := f.tree.Ascend(nil, nil, func(k []byte, v uint64) bool {
		if i >= len(wantKeys) || string(k) != wantKeys[i] || v != model[wantKeys[i]] {
			t.Fatalf("scan mismatch at %d: %q", i, k)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(wantKeys) {
		t.Fatalf("scan stopped at %d of %d", i, len(wantKeys))
	}
	if err := f.tree.Check(); err != nil {
		t.Fatal(err)
	}
}
