package rbtree

import (
	"fmt"
	"path/filepath"
	"testing"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
)

func benchTree(b *testing.B) (*rvm.RVM, *Tree) {
	b.Helper()
	dir := b.TempDir()
	logPath := filepath.Join(dir, "b.log")
	segPath := filepath.Join(dir, "b.seg")
	if err := rvm.CreateLog(logPath, 64<<20); err != nil {
		b.Fatal(err)
	}
	if err := rvm.CreateSegment(segPath, 1, 16<<20); err != nil {
		b.Fatal(err)
	}
	db, err := rvm.Open(rvm.Options{LogPath: logPath, NoSync: true, TruncateThreshold: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	reg, err := db.Map(segPath, 0, 16<<20)
	if err != nil {
		b.Fatal(err)
	}
	heap, err := rds.Format(db, reg)
	if err != nil {
		b.Fatal(err)
	}
	tx, _ := db.Begin(rvm.Restore)
	tree, err := Create(db, heap, tx)
	if err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		b.Fatal(err)
	}
	return db, tree
}

// BenchmarkPut measures transactional upserts (one no-flush tx each)
// against a pre-populated 4k-key tree.  The key space is bounded so the
// measurement is steady-state whatever b.N the framework picks.
func BenchmarkPut(b *testing.B) {
	db, tree := benchTree(b)
	const n = 4096
	for i := 0; i < n; i++ {
		tx, _ := db.Begin(rvm.Restore)
		tree.Put(tx, []byte(fmt.Sprintf("bench-key-%09d", i)), uint64(i))
		tx.Commit(rvm.NoFlush)
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin(rvm.Restore)
		if _, err := tree.Put(tx, []byte(fmt.Sprintf("bench-key-%09d", i%n)), uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(rvm.NoFlush); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures lookups in a 4k-key tree.
func BenchmarkGet(b *testing.B) {
	db, tree := benchTree(b)
	const n = 4096
	for i := 0; i < n; i++ {
		tx, _ := db.Begin(rvm.Restore)
		tree.Put(tx, []byte(fmt.Sprintf("bench-key-%09d", i)), uint64(i))
		tx.Commit(rvm.NoFlush)
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("bench-key-%09d", i%n))
		if _, ok, err := tree.Get(key); err != nil || !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkAscend measures a full ordered scan of a 4k-key tree.
func BenchmarkAscend(b *testing.B) {
	db, tree := benchTree(b)
	const n = 4096
	for i := 0; i < n; i++ {
		tx, _ := db.Begin(rvm.Restore)
		tree.Put(tx, []byte(fmt.Sprintf("bench-key-%09d", i)), uint64(i))
		tx.Commit(rvm.NoFlush)
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tree.Ascend(nil, nil, func([]byte, uint64) bool { count++; return true })
		if count != n {
			b.Fatalf("scan saw %d", count)
		}
	}
}
