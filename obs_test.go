package rvm_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	rvm "github.com/rvm-go/rvm"
)

// commitN runs n flush-mode commits of small payloads against reg.
func commitN(t *testing.T, db *rvm.RVM, reg *rvm.Region, n int, mode rvm.CommitMode) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx, err := db.Begin(rvm.NoRestore)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Modify(reg, int64(i%64)*8, []byte("payload!")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(mode); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotWithObservability(t *testing.T) {
	s := newStore(t, rvm.Options{TraceEvents: 1024, Metrics: true})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, s.db, reg, 5, rvm.Flush)
	commitN(t, s.db, reg, 3, rvm.NoFlush)

	sn, err := s.db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Stats.FlushCommits != 5 || sn.Stats.NoFlushCommits != 3 {
		t.Fatalf("stats = %+v, want 5 flush / 3 noflush", sn.Stats)
	}
	if sn.Metrics == nil {
		t.Fatal("metrics enabled but snapshot has none")
	}
	if got := sn.Metrics.CommitFlushNs.Count; got != 5 {
		t.Errorf("commit_flush count = %d, want 5", got)
	}
	if got := sn.Metrics.CommitNoFlushNs.Count; got != 3 {
		t.Errorf("commit_noflush count = %d, want 3", got)
	}
	if sn.Metrics.CommitFlushNs.P50 <= 0 || sn.Metrics.CommitFlushNs.P99 < sn.Metrics.CommitFlushNs.P50 {
		t.Errorf("flush-commit quantiles implausible: %+v", sn.Metrics.CommitFlushNs)
	}
	if sn.Metrics.ForceLatencyNs.Count == 0 {
		t.Error("no force latencies observed after flush commits")
	}
	if sn.TraceEvents == 0 {
		t.Error("tracing enabled but no events recorded")
	}
	if sn.LogSize == 0 || sn.ActiveTxs != 0 {
		t.Errorf("live levels implausible: log_size=%d active=%d", sn.LogSize, sn.ActiveTxs)
	}

	// The snapshot must round-trip through JSON without losing the parts
	// rvmstat renders.
	data, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	var back rvm.Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stats.FlushCommits != sn.Stats.FlushCommits ||
		back.Metrics.CommitFlushNs.Count != sn.Metrics.CommitFlushNs.Count ||
		back.LogUsed != sn.LogUsed {
		t.Errorf("JSON round trip lost data:\n got %+v\nwant %+v", back, sn)
	}
}

func TestSnapshotWithoutObservability(t *testing.T) {
	s := newStore(t, rvm.Options{})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, s.db, reg, 2, rvm.Flush)
	sn, err := s.db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Metrics != nil {
		t.Error("metrics disabled but snapshot has a registry")
	}
	if sn.TraceEvents != 0 {
		t.Error("tracing disabled but events recorded")
	}
	if sn.Stats.FlushCommits != 2 {
		t.Errorf("counters must work without obs: %+v", sn.Stats)
	}
	var buf bytes.Buffer
	if err := s.db.WriteTrace(&buf, rvm.TraceFormatJSON); err != nil {
		t.Fatalf("WriteTrace with tracing off: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("disabled trace dump = %q, want []", got)
	}
}

func TestTraceCapturesCommitAndForce(t *testing.T) {
	s := newStore(t, rvm.Options{TraceEvents: 256})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, s.db, reg, 3, rvm.Flush)

	byName := map[string]int{}
	for _, ev := range s.db.TraceEvents() {
		byName[ev.Name]++
	}
	for _, want := range []string{"tx-begin", "commit-flush", "log-append", "log-force"} {
		if byName[want] == 0 {
			t.Errorf("trace has no %q events (got %v)", want, byName)
		}
	}

	var buf bytes.Buffer
	if err := s.db.WriteTrace(&buf, rvm.TraceFormatChrome); err != nil {
		t.Fatal(err)
	}
	var chrome []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(chrome) == 0 {
		t.Fatal("chrome trace empty")
	}
}

// TestTraceShowsTruncationOverlap is the acceptance check for the
// paper's Figure 9 claim as seen through the tracer: with a no-flush
// workload committing continuously, incremental truncation's trace span
// must overlap forward commits on the wall clock.  Commit spans start
// when Commit is called (before the engine lock), so a commit in flight
// while truncation holds the engine demonstrates the overlap directly.
func TestTraceShowsTruncationOverlap(t *testing.T) {
	s := newStore(t, rvm.Options{TraceEvents: 8192, Metrics: true, Incremental: true})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var committed atomic.Uint64
	var committerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload := bytes.Repeat([]byte{7}, 64)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := s.db.Begin(rvm.NoRestore)
			if err != nil {
				committerErr = err
				return
			}
			if err := tx.Modify(reg, int64(i%32)*64, payload); err != nil {
				committerErr = err
				return
			}
			if err := tx.Commit(rvm.NoFlush); err != nil {
				committerErr = err
				return
			}
			committed.Add(1)
		}
	}()
	// Each truncation waits for fresh commit traffic first, so every
	// truncation runs with commits demonstrably in flight.  Spans are
	// collected right after each truncation: on a single-CPU host the
	// next wait can let thousands of commits through, and their events
	// would evict this truncation's spans from the bounded trace ring
	// before an end-of-run read ever saw them.
	type span struct{ start, end int64 }
	var truncs, commits []span
	collect := func() {
		for _, ev := range s.db.TraceEvents() {
			if ev.Dur <= 0 {
				continue
			}
			sp := span{ev.TS, ev.TS + ev.Dur}
			switch ev.Name {
			case "trunc-incr":
				truncs = append(truncs, sp)
			case "commit-noflush":
				commits = append(commits, sp)
			}
		}
	}
	for i := 0; i < 5; i++ {
		floor := committed.Load() + 3
		for committed.Load() < floor {
			runtime.Gosched()
		}
		if err := s.db.TruncateIncremental(0); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("incremental truncation %d: %v", i, err)
		}
		collect()
	}
	close(stop)
	wg.Wait()
	if committerErr != nil {
		t.Fatal(committerErr)
	}
	// One more read picks up commits that were still in flight when the
	// last truncation's spans were collected.
	collect()
	if len(truncs) == 0 {
		t.Fatal("trace has no incremental-truncation spans")
	}
	if len(commits) == 0 {
		t.Fatal("trace has no no-flush commit spans")
	}
	for _, tr := range truncs {
		for _, c := range commits {
			if c.start < tr.end && tr.start < c.end {
				return // a commit was in flight while truncation ran
			}
		}
	}
	t.Fatalf("no commit span overlaps any truncation span (%d truncs, %d commits in trace)",
		len(truncs), len(commits))
}

func TestDebugHandler(t *testing.T) {
	s := newStore(t, rvm.Options{TraceEvents: 256, Metrics: true})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, s.db, reg, 2, rvm.Flush)

	srv := httptest.NewServer(s.db.DebugHandler())
	defer srv.Close()

	// /snapshot serves the same JSON Snapshot marshals to.
	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var got rvm.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Stats.FlushCommits != 2 || got.Metrics == nil {
		t.Errorf("debug snapshot = %+v", got)
	}

	resp, err = http.Get(srv.URL + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var chrome []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(chrome) == 0 {
		t.Error("debug trace empty")
	}

	resp, err = http.Get(srv.URL + "/trace?format=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format status = %d, want 400", resp.StatusCode)
	}
}
