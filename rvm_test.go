package rvm_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	rvm "github.com/rvm-go/rvm"
)

type store struct {
	logPath string
	segPath string
	db      *rvm.RVM
}

func newStore(t *testing.T, opts rvm.Options) *store {
	t.Helper()
	dir := t.TempDir()
	s := &store{
		logPath: filepath.Join(dir, "rvm.log"),
		segPath: filepath.Join(dir, "data.seg"),
	}
	if err := rvm.CreateLog(s.logPath, 1<<18); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(s.segPath, 1, 4*int64(rvm.PageSize)); err != nil {
		t.Fatal(err)
	}
	opts.LogPath = s.logPath
	db, err := rvm.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.db = db
	t.Cleanup(func() {
		if s.db != nil {
			s.db.Close()
		}
	})
	return s
}

func TestPublicAPIRoundTrip(t *testing.T) {
	s := newStore(t, rvm.Options{})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	tx, err := s.db.Begin(rvm.Restore)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(reg, 0, 16); err != nil {
		t.Fatal(err)
	}
	copy(reg.Data(), "public api works")
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	if err := s.db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := rvm.Open(rvm.Options{LogPath: s.logPath})
	if err != nil {
		t.Fatal(err)
	}
	s.db = db2
	reg2, err := db2.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Data()[:16]; !bytes.Equal(got, []byte("public api works")) {
		t.Fatalf("got %q", got)
	}
}

func TestPublicAPIWithMmapRegions(t *testing.T) {
	s := newStore(t, rvm.Options{UseMmap: true})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := s.db.Begin(rvm.Restore)
	if err := tx.Modify(reg, 8, []byte("mmap")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	if err := s.db.Unmap(reg); err != nil {
		t.Fatal(err)
	}
	reg2, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reg2.Data()[8:12], []byte("mmap")) {
		t.Fatal("mmap-backed region lost data across unmap")
	}
}

func TestPublicErrors(t *testing.T) {
	s := newStore(t, rvm.Options{})
	if _, err := s.db.Map(s.segPath, 3, 100); !errors.Is(err, rvm.ErrBadAlignment) {
		t.Fatalf("got %v", err)
	}
	reg, _ := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	tx, _ := s.db.Begin(rvm.NoRestore)
	tx.SetRange(reg, 0, 1)
	if err := tx.Abort(); !errors.Is(err, rvm.ErrNoRestoreAbort) {
		t.Fatalf("got %v", err)
	}
	tx.Commit(rvm.NoFlush)
}

func TestConcurrentTransactionsDisjointRanges(t *testing.T) {
	// Many goroutines, each owning a disjoint slice of the region,
	// committing concurrently.  RVM must serialize its own internals even
	// though it does not serialize the application's data access.
	s := newStore(t, rvm.Options{})
	reg, err := s.db.Map(s.segPath, 0, 4*int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const txPerWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 512
			for i := 0; i < txPerWorker; i++ {
				tx, err := s.db.Begin(rvm.Restore)
				if err != nil {
					errs <- err
					return
				}
				if err := tx.SetRange(reg, base, 8); err != nil {
					errs <- err
					return
				}
				binary.BigEndian.PutUint64(reg.Data()[base:], uint64(i+1))
				mode := rvm.Flush
				if i%3 != 0 {
					mode = rvm.NoFlush
				}
				if err := tx.Commit(mode); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := rvm.Open(rvm.Options{LogPath: s.logPath})
	if err != nil {
		t.Fatal(err)
	}
	s.db = db2
	reg2, _ := db2.Map(s.segPath, 0, 4*int64(rvm.PageSize))
	for w := 0; w < workers; w++ {
		got := binary.BigEndian.Uint64(reg2.Data()[int64(w)*512:])
		if got != txPerWorker {
			t.Fatalf("worker %d final value %d, want %d", w, got, txPerWorker)
		}
	}
}

func TestStatsAndQueryExposed(t *testing.T) {
	s := newStore(t, rvm.Options{})
	reg, _ := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	tx, _ := s.db.Begin(rvm.Restore)
	tx.Modify(reg, 0, []byte("x"))
	tx.Commit(rvm.Flush)
	st := s.db.Stats()
	if st.FlushCommits != 1 || st.LogBytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
	qi, err := s.db.Query(reg)
	if err != nil {
		t.Fatal(err)
	}
	if qi.LogSize == 0 {
		t.Fatalf("query: %+v", qi)
	}
	if err := s.db.Truncate(); err != nil {
		t.Fatal(err)
	}
	qi, _ = s.db.Query(nil)
	if qi.LogUsed != 0 {
		t.Fatalf("log not truncated: %+v", qi)
	}
}

func TestGroupCommitPublicAPI(t *testing.T) {
	// The group-commit options must flow through the facade: concurrent
	// flush-mode committers share forces (ForcesSaved > 0), and every
	// acknowledged commit survives a close/reopen.
	s := newStore(t, rvm.Options{GroupCommit: true, MaxForceDelay: 2 * time.Millisecond})
	reg, err := s.db.Map(s.segPath, 0, 4*int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const txPerWorker = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 512
			for i := 0; i < txPerWorker; i++ {
				tx, err := s.db.Begin(rvm.NoRestore)
				if err != nil {
					errs <- err
					return
				}
				if err := tx.SetRange(reg, base, 8); err != nil {
					errs <- err
					return
				}
				binary.BigEndian.PutUint64(reg.Data()[base:], uint64(i+1))
				if err := tx.Commit(rvm.Flush); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.db.Stats()
	if st.FlushCommits != workers*txPerWorker {
		t.Fatalf("FlushCommits = %d, want %d", st.FlushCommits, workers*txPerWorker)
	}
	if st.ForcesSaved == 0 || st.GroupCommitSize < 2 {
		t.Fatalf("no force sharing: %+v", st)
	}
	if err := s.db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := rvm.Open(rvm.Options{LogPath: s.logPath})
	if err != nil {
		t.Fatal(err)
	}
	s.db = db2
	reg2, _ := db2.Map(s.segPath, 0, 4*int64(rvm.PageSize))
	for w := 0; w < workers; w++ {
		got := binary.BigEndian.Uint64(reg2.Data()[int64(w)*512:])
		if got != txPerWorker {
			t.Fatalf("worker %d final value %d, want %d", w, got, txPerWorker)
		}
	}
}
