package rds

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	rvm "github.com/rvm-go/rvm"
)

type fixture struct {
	db      *rvm.RVM
	reg     *rvm.Region
	heap    *Heap
	logPath string
	segPath string
}

func newFixture(t *testing.T, pages int) *fixture {
	t.Helper()
	dir := t.TempDir()
	f := &fixture{
		logPath: filepath.Join(dir, "rds.log"),
		segPath: filepath.Join(dir, "rds.seg"),
	}
	if err := rvm.CreateLog(f.logPath, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(f.segPath, 1, int64(pages)*int64(rvm.PageSize)); err != nil {
		t.Fatal(err)
	}
	db, err := rvm.Open(rvm.Options{LogPath: f.logPath})
	if err != nil {
		t.Fatal(err)
	}
	f.db = db
	t.Cleanup(func() { db.Close() })
	reg, err := db.Map(f.segPath, 0, int64(pages)*int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	f.reg = reg
	h, err := Format(db, reg)
	if err != nil {
		t.Fatal(err)
	}
	f.heap = h
	return f
}

// alloc1 allocates inside a fresh committed transaction.
func (f *fixture) alloc1(t *testing.T, size int64) Offset {
	t.Helper()
	tx, _ := f.db.Begin(rvm.Restore)
	off, err := f.heap.Alloc(tx, size)
	if err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	return off
}

func (f *fixture) free1(t *testing.T, off Offset) {
	t.Helper()
	tx, _ := f.db.Begin(rvm.Restore)
	if err := f.heap.Free(tx, off); err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
}

func TestFormatAttach(t *testing.T) {
	f := newFixture(t, 2)
	h2, err := Attach(f.db, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeBlocks != 1 || st.LiveBytes != 0 {
		t.Fatalf("fresh heap stats: %+v", st)
	}
	if err := h2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachRejectsUnformatted(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "l")
	segPath := filepath.Join(dir, "s")
	rvm.CreateLog(logPath, 1<<16)
	rvm.CreateSegment(segPath, 1, int64(rvm.PageSize))
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reg, _ := db.Map(segPath, 0, int64(rvm.PageSize))
	if _, err := Attach(db, reg); !errors.Is(err, ErrNotHeap) {
		t.Fatalf("got %v", err)
	}
}

func TestAllocWriteFreeCycle(t *testing.T) {
	f := newFixture(t, 2)
	off := f.alloc1(t, 100)
	b, err := f.heap.Bytes(off)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 100 {
		t.Fatalf("payload %d < 100", len(b))
	}
	for _, c := range b {
		if c != 0 {
			t.Fatal("payload not zeroed")
		}
	}
	tx, _ := f.db.Begin(rvm.Restore)
	if err := f.heap.SetRange(tx, off, 0, 5); err != nil {
		t.Fatal(err)
	}
	copy(b, "hello")
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	f.free1(t, off)
	if _, err := f.heap.Bytes(off); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("Bytes on freed block: %v", err)
	}
	if err := f.heap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFree(t *testing.T) {
	f := newFixture(t, 2)
	off := f.alloc1(t, 64)
	f.free1(t, off)
	tx, _ := f.db.Begin(rvm.Restore)
	defer tx.Commit(rvm.NoFlush)
	err := f.heap.Free(tx, off)
	if !errors.Is(err, ErrDoubleFree) && !errors.Is(err, ErrBadOffset) {
		t.Fatalf("double free: %v", err)
	}
}

func TestAllocTooLarge(t *testing.T) {
	f := newFixture(t, 1)
	tx, _ := f.db.Begin(rvm.Restore)
	defer tx.Abort()
	if _, err := f.heap.Alloc(tx, f.reg.Length()); !errors.Is(err, ErrSizeTooLarge) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.heap.Alloc(tx, 0); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
}

func TestExhaustionAndReuse(t *testing.T) {
	f := newFixture(t, 1)
	var offs []Offset
	for {
		tx, _ := f.db.Begin(rvm.Restore)
		off, err := f.heap.Alloc(tx, 256)
		if errors.Is(err, ErrNoSpace) {
			tx.Abort()
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(rvm.Flush); err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		if len(offs) > 100 {
			t.Fatal("never exhausted")
		}
	}
	if len(offs) < 5 {
		t.Fatalf("only %d allocations fit", len(offs))
	}
	// Free everything; the heap must coalesce back to one block.
	for _, off := range offs {
		f.free1(t, off)
	}
	st, err := f.heap.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeBlocks != 1 {
		t.Fatalf("fragmented after full free: %+v", st)
	}
	if st.LiveBytes != 0 {
		t.Fatalf("live bytes leaked: %+v", st)
	}
	// And a big allocation fits again.
	f.alloc1(t, 2048)
}

func TestAbortUndoesAllocation(t *testing.T) {
	f := newFixture(t, 2)
	before, _ := f.heap.Stats()
	tx, _ := f.db.Begin(rvm.Restore)
	if _, err := f.heap.Alloc(tx, 512); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	after, err := f.heap.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.LiveBytes != before.LiveBytes || after.FreeBlocks != before.FreeBlocks {
		t.Fatalf("abort leaked: before %+v after %+v", before, after)
	}
	if err := f.heap.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapSurvivesCrash(t *testing.T) {
	f := newFixture(t, 2)
	off := f.alloc1(t, 40)
	tx, _ := f.db.Begin(rvm.Restore)
	b, _ := f.heap.Bytes(off)
	f.heap.SetRange(tx, off, 0, 9)
	copy(b, "persisted")
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	// Allocation that never commits must vanish at recovery.
	tx2, _ := f.db.Begin(rvm.Restore)
	if _, err := f.heap.Alloc(tx2, 64); err != nil {
		t.Fatal(err)
	}
	// Crash: reopen without commit or close.
	db2, err := rvm.Open(rvm.Options{LogPath: f.logPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reg2, err := db2.Map(f.segPath, 0, f.reg.Length())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Attach(db2, reg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Check(); err != nil {
		t.Fatalf("heap corrupt after crash: %v", err)
	}
	b2, err := h2.Bytes(off)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2[:9], []byte("persisted")) {
		t.Fatalf("payload lost: %q", b2[:9])
	}
	st, _ := h2.Stats()
	if st.Allocs != 1 {
		t.Fatalf("uncommitted alloc leaked into stats: %+v", st)
	}
}

// TestRandomizedAllocFreeModel drives random alloc/free/write traffic,
// checking heap invariants and payload integrity against a model, with
// periodic crash-recovery cycles.
func TestRandomizedAllocFreeModel(t *testing.T) {
	f := newFixture(t, 8)
	rng := rand.New(rand.NewSource(17))
	type block struct {
		off  Offset
		data []byte
	}
	live := map[Offset]*block{}
	h := f.heap
	db := f.db
	reg := f.reg

	reopen := func() {
		var err error
		db2, err := rvm.Open(rvm.Options{LogPath: f.logPath})
		if err != nil {
			t.Fatal(err)
		}
		reg, err = db2.Map(f.segPath, 0, f.reg.Length())
		if err != nil {
			t.Fatal(err)
		}
		h, err = Attach(db2, reg)
		if err != nil {
			t.Fatal(err)
		}
		old := db
		db = db2
		_ = old // crashed engine abandoned
	}

	steps := 400
	if testing.Short() {
		steps = 80
	}
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(10); {
		case r < 4: // alloc + write
			size := int64(1 + rng.Intn(600))
			tx, _ := db.Begin(rvm.Restore)
			off, err := h.Alloc(tx, size)
			if errors.Is(err, ErrNoSpace) {
				tx.Abort()
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, size)
			rng.Read(data)
			if err := h.SetRange(tx, off, 0, size); err != nil {
				t.Fatal(err)
			}
			b, _ := h.Bytes(off)
			copy(b, data)
			if err := tx.Commit(rvm.Flush); err != nil {
				t.Fatal(err)
			}
			live[off] = &block{off, data}
		case r < 6: // free one
			for off := range live {
				tx, _ := db.Begin(rvm.Restore)
				if err := h.Free(tx, off); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(rvm.Flush); err != nil {
					t.Fatal(err)
				}
				delete(live, off)
				break
			}
		case r < 7: // aborted alloc: no effect
			tx, _ := db.Begin(rvm.Restore)
			if _, err := h.Alloc(tx, int64(1+rng.Intn(300))); err == nil {
				tx.Abort()
			} else {
				tx.Abort()
			}
		case r < 8 && i%37 == 0: // crash + recover
			reopen()
		default: // verify a random block
			for off, bl := range live {
				b, err := h.Bytes(off)
				if err != nil {
					t.Fatalf("step %d: lost block %d: %v", i, off, err)
				}
				if !bytes.Equal(b[:len(bl.data)], bl.data) {
					t.Fatalf("step %d: block %d corrupted", i, off)
				}
				break
			}
		}
		if i%25 == 0 {
			if err := h.Check(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	// Final: all blocks intact.
	for off, bl := range live {
		b, err := h.Bytes(off)
		if err != nil {
			t.Fatalf("final: block %d: %v", off, err)
		}
		if !bytes.Equal(b[:len(bl.data)], bl.data) {
			t.Fatalf("final: block %d corrupted", off)
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	f := newFixture(t, 2)
	a := f.alloc1(t, 100)
	b := f.alloc1(t, 200)
	st, _ := f.heap.Stats()
	if st.Allocs != 2 || st.Frees != 0 || st.LiveBytes < 300 {
		t.Fatalf("stats: %+v", st)
	}
	f.free1(t, a)
	f.free1(t, b)
	st, _ = f.heap.Stats()
	if st.Frees != 2 || st.LiveBytes != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
