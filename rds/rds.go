// Package rds implements Recoverable Dynamic Storage: a heap allocator
// whose metadata and payload both live in recoverable virtual memory.
//
// The paper (§4.1) describes "a recoverable memory allocator, layered on
// RVM, [that] supports heap management of storage within a segment"; the
// original RVM release shipped it as the rds library.  This package is
// that layer: Format initializes a heap inside a mapped region, and
// Alloc/Free run inside the caller's RVM transaction so heap mutations
// are exactly as atomic and permanent as the application data they
// accompany.  After a crash, Attach finds the heap exactly as the last
// committed transaction left it — no separate salvage step.
//
// Blocks are identified by Offset, a region-relative position that is
// stable across crashes and re-mappings (the Go analogue of the paper's
// "absolute pointers in segments", made stable by the segment loader).
//
// The allocator is a classic boundary-tag first-fit heap: every block
// carries a size/flag header and footer, free blocks are threaded on a
// doubly-linked free list kept in recoverable memory, and Free coalesces
// with both neighbours.
package rds

import (
	"encoding/binary"
	"errors"
	"fmt"

	rvm "github.com/rvm-go/rvm"
)

// Offset identifies an allocated block's payload within the heap's region.
// Offsets remain valid across crashes, Unmap/Map cycles, and process
// restarts.
type Offset int64

// Heap layout constants.  All sizes in bytes.
const (
	magic       = 0x52445348 // "RDSH"
	version     = 1
	hdrSize     = 64 // heap header at region offset 0
	tagSize     = 8  // block header / footer: size | flags
	linkSize    = 16 // next+prev free-list offsets, in free block payloads
	minPayload  = linkSize
	minBlock    = 2*tagSize + minPayload
	freeFlag    = 1 // low bit of the tag word
	sizeMask    = ^uint64(7)
	nilOffset   = 0 // region offset 0 is the header, so 0 marks "none"
	payloadBase = hdrSize
)

// Heap header field offsets (within the first hdrSize bytes).
const (
	offMagic    = 0
	offVersion  = 4
	offHeapSize = 8  // total bytes managed (region length)
	offFreeHead = 16 // offset of first free block (its header), or 0
	offNAlloc   = 24 // cumulative allocations
	offNFree    = 32 // cumulative frees
	offLiveByte = 40 // bytes in live payloads
	offRoot     = 48 // application root pointer (an Offset, or 0)
)

// Errors returned by the allocator.
var (
	ErrNotHeap      = errors.New("rds: region does not contain an RDS heap")
	ErrCorrupt      = errors.New("rds: heap metadata corrupt")
	ErrNoSpace      = errors.New("rds: insufficient free space")
	ErrBadOffset    = errors.New("rds: offset does not name an allocated block")
	ErrDoubleFree   = errors.New("rds: block is already free")
	ErrSizeTooLarge = errors.New("rds: requested size exceeds heap capacity")
)

// Heap is an attached recoverable heap.  Heap itself holds no mutable
// state — everything lives in the region — so any number of Heap values
// may refer to the same region.  Serialize concurrent transactions above
// this layer (e.g. package rvmlock); rds inherits RVM's concurrency
// contract.
type Heap struct {
	db  *rvm.RVM
	reg *rvm.Region
}

func u64(b []byte) uint64      { return binary.BigEndian.Uint64(b) }
func put64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// Format initializes an RDS heap covering the whole region, inside its own
// committed transaction.  The region must be at least one page.
func Format(db *rvm.RVM, reg *rvm.Region) (*Heap, error) {
	if reg.Length() < hdrSize+minBlock {
		return nil, fmt.Errorf("rds: region of %d bytes too small for a heap", reg.Length())
	}
	tx, err := db.Begin(rvm.Restore)
	if err != nil {
		return nil, err
	}
	// Only the metadata areas need to be written (and logged): the heap
	// header and the initial free block's tags and links.  Block payloads
	// are zeroed at Alloc time, so any stale bytes between them are
	// unreachable — logging the whole region here would cost a log record
	// the size of the heap.
	if err := tx.SetRange(reg, 0, hdrSize); err != nil {
		tx.Abort()
		return nil, err
	}
	d := reg.Data()
	for i := 0; i < hdrSize; i++ {
		d[i] = 0
	}
	binary.BigEndian.PutUint32(d[offMagic:], magic)
	binary.BigEndian.PutUint32(d[offVersion:], version)
	put64(d[offHeapSize:], uint64(reg.Length()))
	// One big free block spanning the rest of the region.
	first := int64(payloadBase)
	blockLen := reg.Length() - first
	h := &Heap{db: db, reg: reg}
	if err := h.setRangeBlock(tx, first, blockLen); err != nil {
		tx.Abort()
		return nil, err
	}
	h.writeTags(first, uint64(blockLen)|freeFlag)
	h.setLinks(first, nilOffset, nilOffset)
	put64(d[offFreeHead:], uint64(first))
	if err := tx.Commit(rvm.Flush); err != nil {
		return nil, err
	}
	return h, nil
}

// Attach opens an existing heap in the region, validating its header.
func Attach(db *rvm.RVM, reg *rvm.Region) (*Heap, error) {
	d := reg.Data()
	if len(d) < hdrSize {
		return nil, ErrNotHeap
	}
	if binary.BigEndian.Uint32(d[offMagic:]) != magic {
		return nil, ErrNotHeap
	}
	if v := binary.BigEndian.Uint32(d[offVersion:]); v != version {
		return nil, fmt.Errorf("rds: unsupported heap version %d", v)
	}
	if int64(u64(d[offHeapSize:])) != reg.Length() {
		return nil, fmt.Errorf("%w: header claims %d bytes, region has %d", ErrCorrupt, u64(d[offHeapSize:]), reg.Length())
	}
	return &Heap{db: db, reg: reg}, nil
}

// Region returns the region the heap lives in.
func (h *Heap) Region() *rvm.Region { return h.reg }

// blockAt reads the tag of the block whose header is at off.
func (h *Heap) blockAt(off int64) (size int64, free bool, err error) {
	d := h.reg.Data()
	if off < payloadBase || off+tagSize > int64(len(d)) {
		return 0, false, fmt.Errorf("%w: header offset %d", ErrCorrupt, off)
	}
	tag := u64(d[off:])
	size = int64(tag & sizeMask)
	if size < minBlock || off+size > int64(len(d)) {
		return 0, false, fmt.Errorf("%w: block at %d has size %d", ErrCorrupt, off, size)
	}
	if foot := u64(d[off+size-tagSize:]); foot != tag {
		return 0, false, fmt.Errorf("%w: header/footer mismatch at %d", ErrCorrupt, off)
	}
	return size, tag&freeFlag != 0, nil
}

// writeTags writes header and footer for the block at off.
func (h *Heap) writeTags(off int64, tag uint64) {
	d := h.reg.Data()
	size := int64(tag & sizeMask)
	put64(d[off:], tag)
	put64(d[off+size-tagSize:], tag)
}

// links returns the free-list next/prev of the free block at off.
func (h *Heap) links(off int64) (next, prev int64) {
	d := h.reg.Data()
	return int64(u64(d[off+tagSize:])), int64(u64(d[off+tagSize+8:]))
}

func (h *Heap) setLinks(off, next, prev int64) {
	d := h.reg.Data()
	put64(d[off+tagSize:], uint64(next))
	put64(d[off+tagSize+8:], uint64(prev))
}

// freeHead reads the head of the free list.
func (h *Heap) freeHead() int64 { return int64(u64(h.reg.Data()[offFreeHead:])) }

// setRangeBlock covers a block's metadata (tags and links) in tx.
func (h *Heap) setRangeBlock(tx *rvm.Tx, off, size int64) error {
	// Header + links area, and footer.
	if err := tx.SetRange(h.reg, off, tagSize+linkSize); err != nil {
		return err
	}
	return tx.SetRange(h.reg, off+size-tagSize, tagSize)
}

// unlink removes the free block at off from the free list under tx.
func (h *Heap) unlink(tx *rvm.Tx, off int64) error {
	next, prev := h.links(off)
	if prev == nilOffset {
		if err := tx.SetRange(h.reg, offFreeHead, 8); err != nil {
			return err
		}
		put64(h.reg.Data()[offFreeHead:], uint64(next))
	} else {
		if err := tx.SetRange(h.reg, prev+tagSize, linkSize); err != nil {
			return err
		}
		h.setLinks(prev, next, mustPrev(h, prev))
	}
	if next != nilOffset {
		if err := tx.SetRange(h.reg, next+tagSize, linkSize); err != nil {
			return err
		}
		nn, _ := h.links(next)
		h.setLinks(next, nn, prev)
	}
	return nil
}

func mustPrev(h *Heap, off int64) int64 {
	_, p := h.links(off)
	return p
}

// pushFree inserts the free block at off at the head of the free list.
func (h *Heap) pushFree(tx *rvm.Tx, off int64) error {
	head := h.freeHead()
	if err := tx.SetRange(h.reg, offFreeHead, 8); err != nil {
		return err
	}
	if err := tx.SetRange(h.reg, off+tagSize, linkSize); err != nil {
		return err
	}
	h.setLinks(off, head, nilOffset)
	if head != nilOffset {
		if err := tx.SetRange(h.reg, head+tagSize, linkSize); err != nil {
			return err
		}
		hn, _ := h.links(head)
		h.setLinks(head, hn, off)
	}
	put64(h.reg.Data()[offFreeHead:], uint64(off))
	return nil
}

// align8 rounds n up to a multiple of 8.
func align8(n int64) int64 { return (n + 7) &^ 7 }

// Alloc allocates size usable bytes inside tx and returns the payload
// offset.  The new payload is zeroed (and the zeroing is part of the
// transaction).  The allocation becomes permanent when tx commits; if tx
// aborts, the heap is unchanged.
func (h *Heap) Alloc(tx *rvm.Tx, size int64) (Offset, error) {
	if size <= 0 {
		return 0, fmt.Errorf("rds: invalid allocation size %d", size)
	}
	need := align8(size) + 2*tagSize
	if need < minBlock {
		need = minBlock
	}
	if need > h.reg.Length()-hdrSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrSizeTooLarge, size)
	}
	// First fit.
	for off := h.freeHead(); off != nilOffset; {
		bsize, free, err := h.blockAt(off)
		if err != nil {
			return 0, err
		}
		if !free {
			return 0, fmt.Errorf("%w: free list points at allocated block %d", ErrCorrupt, off)
		}
		next, _ := h.links(off)
		if bsize >= need {
			if err := h.allocateFrom(tx, off, bsize, need); err != nil {
				return 0, err
			}
			// Zero the payload under the transaction.
			pay := off + tagSize
			payLen := blockPayload(h, off)
			if err := tx.SetRange(h.reg, pay, payLen); err != nil {
				return 0, err
			}
			d := h.reg.Data()
			for i := pay; i < pay+payLen; i++ {
				d[i] = 0
			}
			if err := h.bumpStats(tx, 1, 0, payLen); err != nil {
				return 0, err
			}
			return Offset(pay), nil
		}
		off = next
	}
	return 0, fmt.Errorf("%w: %d bytes requested", ErrNoSpace, size)
}

// blockPayload returns the usable payload length of the block at off.
func blockPayload(h *Heap, off int64) int64 {
	size := int64(u64(h.reg.Data()[off:]) & sizeMask)
	return size - 2*tagSize
}

// allocateFrom carves `need` bytes out of the free block at off (size
// bsize), splitting when the remainder can stand alone.
func (h *Heap) allocateFrom(tx *rvm.Tx, off, bsize, need int64) error {
	if err := h.unlink(tx, off); err != nil {
		return err
	}
	rem := bsize - need
	if rem >= minBlock {
		if err := h.setRangeBlock(tx, off, need); err != nil {
			return err
		}
		h.writeTags(off, uint64(need))
		remOff := off + need
		if err := h.setRangeBlock(tx, remOff, rem); err != nil {
			return err
		}
		h.writeTags(remOff, uint64(rem)|freeFlag)
		if err := h.pushFree(tx, remOff); err != nil {
			return err
		}
	} else {
		if err := h.setRangeBlock(tx, off, bsize); err != nil {
			return err
		}
		h.writeTags(off, uint64(bsize))
	}
	return nil
}

// Free returns the block whose payload starts at off to the heap, inside
// tx, coalescing with free neighbours.
func (h *Heap) Free(tx *rvm.Tx, off Offset) error {
	hdr := int64(off) - tagSize
	size, free, err := h.blockAt(hdr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadOffset, err)
	}
	if free {
		return fmt.Errorf("%w: payload %d", ErrDoubleFree, int64(off))
	}
	payLen := size - 2*tagSize
	start, total := hdr, size

	// Coalesce with the following block.
	if after := hdr + size; after < h.reg.Length() {
		asize, afree, err := h.blockAt(after)
		if err == nil && afree {
			if err := h.unlink(tx, after); err != nil {
				return err
			}
			total += asize
		}
	}
	// Coalesce with the preceding block, found via its footer.
	if hdr > payloadBase {
		ptag := u64(h.reg.Data()[hdr-tagSize:])
		if ptag&freeFlag != 0 {
			psize := int64(ptag & sizeMask)
			prev := hdr - psize
			if _, pfree, err := h.blockAt(prev); err == nil && pfree {
				if err := h.unlink(tx, prev); err != nil {
					return err
				}
				start = prev
				total += psize
			}
		}
	}
	if err := h.setRangeBlock(tx, start, total); err != nil {
		return err
	}
	h.writeTags(start, uint64(total)|freeFlag)
	if err := h.pushFree(tx, start); err != nil {
		return err
	}
	return h.bumpStats(tx, 0, 1, -payLen)
}

// bumpStats updates the cumulative counters in the heap header under tx.
func (h *Heap) bumpStats(tx *rvm.Tx, dAlloc, dFree uint64, dLive int64) error {
	if err := tx.SetRange(h.reg, offNAlloc, 24); err != nil {
		return err
	}
	d := h.reg.Data()
	put64(d[offNAlloc:], u64(d[offNAlloc:])+dAlloc)
	put64(d[offNFree:], u64(d[offNFree:])+dFree)
	put64(d[offLiveByte:], uint64(int64(u64(d[offLiveByte:]))+dLive))
	return nil
}

// Bytes returns the payload of the allocated block at off.  The slice
// aliases region memory: writes to it must be bracketed by SetRange on an
// active transaction, like any recoverable memory.
func (h *Heap) Bytes(off Offset) ([]byte, error) {
	hdr := int64(off) - tagSize
	size, free, err := h.blockAt(hdr)
	if err != nil || free {
		return nil, ErrBadOffset
	}
	return h.reg.Data()[off : int64(off)+size-2*tagSize], nil
}

// Size returns the usable payload size of the allocated block at off.
func (h *Heap) Size(off Offset) (int64, error) {
	b, err := h.Bytes(off)
	if err != nil {
		return 0, err
	}
	return int64(len(b)), nil
}

// SetRange covers [off+from, off+from+n) of the block's payload in tx — a
// convenience for transactional writes to a block.
func (h *Heap) SetRange(tx *rvm.Tx, off Offset, from, n int64) error {
	b, err := h.Bytes(off)
	if err != nil {
		return err
	}
	if from < 0 || n < 0 || from+n > int64(len(b)) {
		return fmt.Errorf("rds: range [%d,+%d) outside block of %d bytes", from, n, len(b))
	}
	return tx.SetRange(h.reg, int64(off)+from, n)
}

// SetRoot stores an application root pointer in the heap header under tx.
// The root is how persistent data structures find their entry block after
// a restart: allocate the structure, then point the root at it, all in one
// transaction.  Pass 0 to clear.
func (h *Heap) SetRoot(tx *rvm.Tx, off Offset) error {
	if off != 0 {
		if _, err := h.Bytes(off); err != nil {
			return err
		}
	}
	if err := tx.SetRange(h.reg, offRoot, 8); err != nil {
		return err
	}
	put64(h.reg.Data()[offRoot:], uint64(off))
	return nil
}

// Root returns the application root pointer, or 0 if unset.
func (h *Heap) Root() Offset {
	return Offset(u64(h.reg.Data()[offRoot:]))
}

// Stats reports heap occupancy.
type Stats struct {
	HeapBytes  int64  // total managed bytes
	LiveBytes  int64  // bytes in live payloads
	FreeBytes  int64  // bytes in free blocks (including their tags)
	FreeBlocks int    // blocks on the free list
	Allocs     uint64 // cumulative allocations
	Frees      uint64 // cumulative frees
}

// Stats walks the free list and returns occupancy numbers.
func (h *Heap) Stats() (Stats, error) {
	d := h.reg.Data()
	st := Stats{
		HeapBytes: h.reg.Length(),
		LiveBytes: int64(u64(d[offLiveByte:])),
		Allocs:    u64(d[offNAlloc:]),
		Frees:     u64(d[offNFree:]),
	}
	seen := map[int64]bool{}
	for off := h.freeHead(); off != nilOffset; {
		if seen[off] {
			return st, fmt.Errorf("%w: free list cycle at %d", ErrCorrupt, off)
		}
		seen[off] = true
		size, free, err := h.blockAt(off)
		if err != nil {
			return st, err
		}
		if !free {
			return st, fmt.Errorf("%w: allocated block %d on free list", ErrCorrupt, off)
		}
		st.FreeBytes += size
		st.FreeBlocks++
		off, _ = h.links(off)
	}
	return st, nil
}

// Check validates the whole heap: every block walkable header-to-header,
// tags consistent, free blocks exactly the free-list members, no adjacent
// free blocks (coalescing invariant).
func (h *Heap) Check() error {
	onList := map[int64]bool{}
	for off := h.freeHead(); off != nilOffset; {
		if onList[off] {
			return fmt.Errorf("%w: free list cycle", ErrCorrupt)
		}
		onList[off] = true
		off2, _ := h.links(off)
		off = off2
	}
	prevFree := false
	for off := int64(payloadBase); off < h.reg.Length(); {
		size, free, err := h.blockAt(off)
		if err != nil {
			return err
		}
		if free && prevFree {
			return fmt.Errorf("%w: adjacent free blocks at %d", ErrCorrupt, off)
		}
		if free != onList[off] {
			return fmt.Errorf("%w: block %d free=%v but list membership=%v", ErrCorrupt, off, free, onList[off])
		}
		prevFree = free
		off += size
	}
	return nil
}
