package rds

import (
	"errors"
	"testing"

	rvm "github.com/rvm-go/rvm"
)

func TestRootPointer(t *testing.T) {
	f := newFixture(t, 2)
	if f.heap.Root() != 0 {
		t.Fatal("fresh heap has a root")
	}
	off := f.alloc1(t, 32)
	tx, _ := f.db.Begin(rvm.Restore)
	if err := f.heap.SetRoot(tx, off); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	if f.heap.Root() != off {
		t.Fatalf("root %d want %d", f.heap.Root(), off)
	}
	// Persists across a crash.
	db2, err := rvm.Open(rvm.Options{LogPath: f.logPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reg2, _ := db2.Map(f.segPath, 0, f.reg.Length())
	h2, err := Attach(db2, reg2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Root() != off {
		t.Fatalf("recovered root %d want %d", h2.Root(), off)
	}
	// Clearing works; invalid roots are rejected.
	tx2, _ := db2.Begin(rvm.Restore)
	if err := h2.SetRoot(tx2, 0); err != nil {
		t.Fatal(err)
	}
	if err := h2.SetRoot(tx2, Offset(12345)); !errors.Is(err, ErrBadOffset) && err == nil {
		t.Fatalf("wild root accepted: %v", err)
	}
	tx2.Commit(rvm.NoFlush)
}

func TestSetRangeBounds(t *testing.T) {
	f := newFixture(t, 2)
	off := f.alloc1(t, 64)
	tx, _ := f.db.Begin(rvm.Restore)
	defer tx.Commit(rvm.NoFlush)
	if err := f.heap.SetRange(tx, off, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := f.heap.SetRange(tx, off, 60, 10); err == nil {
		t.Fatal("out-of-block range accepted")
	}
	if err := f.heap.SetRange(tx, off, -1, 4); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestSizeAccessor(t *testing.T) {
	f := newFixture(t, 2)
	off := f.alloc1(t, 100)
	n, err := f.heap.Size(off)
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Fatalf("Size=%d", n)
	}
	if _, err := f.heap.Size(Offset(3)); err == nil {
		t.Fatal("size of wild offset succeeded")
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	f := newFixture(t, 2)
	off := f.alloc1(t, 64)
	// Corrupt the block header outside any transaction (simulating an
	// application scribbling over heap metadata — the class of bug the
	// Coda post-mortem tooling hunted).
	hdr := int64(off) - 8
	f.reg.Data()[hdr] ^= 0xFF
	if err := f.heap.Check(); err == nil {
		t.Fatal("Check missed corrupted block header")
	}
}

func TestFormatTooSmall(t *testing.T) {
	// A region smaller than header+minimum block must be rejected.
	f := newFixture(t, 2)
	_ = f
	dir := t.TempDir()
	logPath := dir + "/l.log"
	segPath := dir + "/s.seg"
	if err := rvm.CreateLog(logPath, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(segPath, 9, int64(rvm.PageSize)); err != nil {
		t.Fatal(err)
	}
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Map one page, then attempt to format a heap over a region that is
	// large enough — we can't map sub-page regions, so exercise the guard
	// directly with the page-sized region (should succeed) and rely on
	// the arithmetic check for the error branch.
	reg, err := db.Map(segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(db, reg); err != nil {
		t.Fatalf("page-sized heap rejected: %v", err)
	}
}
