# External lint tools are installed by version, never @latest; CI installs
# the same versions (TestLintToolVersionsPinned keeps the two in sync).
STATICCHECK_VERSION := 2024.1.1
GOVULNCHECK_VERSION := v1.1.3

.PHONY: build test lint bench bench-gates

build:
	go build ./...

test:
	go build ./... && go test ./...

# lint runs everything that needs no network: gofmt, go vet, and the
# repo's own rvmcheck suite (all eight discipline analyzers, run
# whole-program; see DESIGN.md §10).  staticcheck and govulncheck run
# when installed (go install <module>@$(VERSION)) and are skipped
# otherwise, so `make lint` works in offline sandboxes.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/rvmcheck ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)"; fi

bench:
	go test -bench 'Table1|ConcurrentCommit|ConcurrentSetRange' -benchtime 1x -run '^$$' .

# bench-gates runs the five checked-in regression gates the way CI does:
# fsyncs/commit + p99, observability overhead, commit scaling, sharded-WAL
# scaling, and recovery (parallel-redo speedup + checkpoint-bounded
# restart scan).
bench-gates:
	go run ./cmd/rvmbench -experiment concurrent -json BENCH_ci.json -thresholds bench_thresholds.json
	go run ./cmd/rvmbench -experiment obs -thresholds bench_thresholds.json
	go run ./cmd/rvmbench -experiment scaling -json BENCH_ci.json -thresholds bench_thresholds.json
	go run ./cmd/rvmbench -experiment sharding -json BENCH_ci.json -thresholds bench_thresholds.json
	go run ./cmd/rvmbench -experiment recovery -json BENCH_ci.json -thresholds bench_thresholds.json
