// Package rvmlock provides serializability as a layer above RVM.
//
// RVM deliberately factors out concurrency control (paper §3.1): it is
// internally thread-safe but does not serialize application transactions.
// "If serializability is required, a layer above RVM has to enforce it.
// That layer is also responsible for coping with deadlocks, starvation and
// other unpleasant concurrency control problems."  This package is that
// layer: a strict two-phase lock manager over application-chosen lock
// names, at whatever granularity suits the application's abstractions —
// one lock per account, per directory, per B-tree node.
//
// Usage pattern:
//
//	lk := mgr.Begin()
//	defer lk.Release()                       // strict 2PL: release at end
//	if err := lk.Acquire("acct/42", rvmlock.Exclusive); err != nil { ... }
//	tx, _ := db.Begin(rvm.Restore)
//	... mutate under tx ...
//	tx.Commit(rvm.Flush)
//
// Deadlocks are detected by cycle search on the wait-for graph; the
// requester that would close a cycle gets ErrDeadlock and should abort its
// RVM transaction and retry.
package rvmlock

import (
	"errors"
	"fmt"
	"sync"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

// ErrDeadlock is returned to the transaction whose request would close a
// wait-for cycle.
var ErrDeadlock = errors.New("rvmlock: deadlock detected")

// ErrReleased is returned when acquiring on an already-released token.
var ErrReleased = errors.New("rvmlock: lock token already released")

// lockState tracks one lock name.
type lockState struct {
	holders map[int]Mode // token id -> strongest held mode
}

// Manager is a lock manager.  One Manager serializes one family of lock
// names; applications usually create a single Manager next to their RVM
// instance.
type Manager struct {
	mu     sync.Mutex
	cond   *sync.Cond
	locks  map[string]*lockState
	waits  map[int]map[int]bool // waiter -> blockers (wait-for graph)
	nextID int
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		locks: make(map[string]*lockState),
		waits: make(map[int]map[int]bool),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Locks is a two-phase lock scope, typically one per transaction.
type Locks struct {
	mgr      *Manager
	id       int
	held     map[string]Mode
	released bool
}

// Begin opens a lock scope.
func (m *Manager) Begin() *Locks {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return &Locks{mgr: m, id: m.nextID, held: make(map[string]Mode)}
}

// blockers returns the token ids preventing l from holding key in mode.
func (m *Manager) blockers(key string, mode Mode, id int) []int {
	st := m.locks[key]
	if st == nil {
		return nil
	}
	var out []int
	for hid, hmode := range st.holders {
		if hid == id {
			continue
		}
		if mode == Exclusive || hmode == Exclusive {
			out = append(out, hid)
		}
	}
	return out
}

// wouldDeadlock reports whether adding edges waiter->blockers closes a
// cycle in the wait-for graph.
func (m *Manager) wouldDeadlock(waiter int, blockers []int) bool {
	// DFS from each blocker looking for a path back to the waiter.
	seen := map[int]bool{}
	var stack []int
	stack = append(stack, blockers...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == waiter {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for b := range m.waits[n] {
			stack = append(stack, b)
		}
	}
	return false
}

// Acquire takes key in the given mode, blocking until granted.  Acquiring
// a lock already held is a no-op (or an upgrade from Shared to Exclusive).
// If waiting would deadlock, Acquire returns ErrDeadlock immediately and
// the scope's other locks remain held.
func (l *Locks) Acquire(key string, mode Mode) error {
	m := l.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if l.released {
		return ErrReleased
	}
	if have, ok := l.held[key]; ok && (have == Exclusive || mode == Shared) {
		return nil // already strong enough
	}
	for {
		blockers := m.blockers(key, mode, l.id)
		if len(blockers) == 0 {
			break
		}
		if m.wouldDeadlock(l.id, blockers) {
			delete(m.waits, l.id)
			return fmt.Errorf("%w: %q", ErrDeadlock, key)
		}
		bs := make(map[int]bool, len(blockers))
		for _, b := range blockers {
			bs[b] = true
		}
		m.waits[l.id] = bs
		m.cond.Wait()
		if l.released {
			delete(m.waits, l.id)
			return ErrReleased
		}
	}
	delete(m.waits, l.id)
	st := m.locks[key]
	if st == nil {
		st = &lockState{holders: make(map[int]Mode)}
		m.locks[key] = st
	}
	st.holders[l.id] = mode
	l.held[key] = mode
	return nil
}

// TryAcquire takes key without blocking, reporting whether it was granted.
func (l *Locks) TryAcquire(key string, mode Mode) bool {
	m := l.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if l.released {
		return false
	}
	if have, ok := l.held[key]; ok && (have == Exclusive || mode == Shared) {
		return true
	}
	if len(m.blockers(key, mode, l.id)) > 0 {
		return false
	}
	st := m.locks[key]
	if st == nil {
		st = &lockState{holders: make(map[int]Mode)}
		m.locks[key] = st
	}
	st.holders[l.id] = mode
	l.held[key] = mode
	return true
}

// Held reports the mode held on key, if any.
func (l *Locks) Held(key string) (Mode, bool) {
	m := l.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := l.held[key]
	return mode, ok
}

// Release drops every lock in the scope (strict two-phase release point).
// It is idempotent.  Call it after the RVM transaction commits or aborts.
func (l *Locks) Release() {
	m := l.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if l.released {
		return
	}
	l.released = true
	for key := range l.held {
		st := m.locks[key]
		delete(st.holders, l.id)
		if len(st.holders) == 0 {
			delete(m.locks, key)
		}
	}
	delete(m.waits, l.id)
	m.cond.Broadcast()
}

// Stats reports lock-manager occupancy (for debugging and tests).
type Stats struct {
	LockedKeys int // names with at least one holder
	Waiters    int // scopes currently blocked
}

// Stats returns a snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{LockedKeys: len(m.locks), Waiters: len(m.waits)}
}
