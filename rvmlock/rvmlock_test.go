package rvmlock

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rvm "github.com/rvm-go/rvm"
)

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	if err := a.Acquire("k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire("k", Shared); err != nil {
		t.Fatal(err)
	}
	a.Release()
	b.Release()
	if st := m.Stats(); st.LockedKeys != 0 {
		t.Fatalf("locks leaked: %+v", st)
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	if err := a.Acquire("k", Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- b.Acquire("k", Exclusive) }()
	select {
	case err := <-got:
		t.Fatalf("second exclusive acquired immediately: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	a.Release()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	b.Release()
}

func TestSharedBlocksExclusive(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	a.Acquire("k", Shared)
	if b.TryAcquire("k", Exclusive) {
		t.Fatal("exclusive granted over shared")
	}
	if !b.TryAcquire("k", Shared) {
		t.Fatal("shared denied alongside shared")
	}
	a.Release()
	b.Release()
}

func TestReacquireAndUpgrade(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	if err := a.Acquire("k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire("k", Shared); err != nil { // no-op
		t.Fatal(err)
	}
	if err := a.Acquire("k", Exclusive); err != nil { // sole holder upgrade
		t.Fatal(err)
	}
	if mode, ok := a.Held("k"); !ok || mode != Exclusive {
		t.Fatalf("held %v/%v", mode, ok)
	}
	// Downgrade request is a no-op; stays exclusive.
	if err := a.Acquire("k", Shared); err != nil {
		t.Fatal(err)
	}
	if mode, _ := a.Held("k"); mode != Exclusive {
		t.Fatal("downgraded")
	}
	a.Release()
}

func TestTwoPartyDeadlock(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	a.Acquire("x", Exclusive)
	b.Acquire("y", Exclusive)
	done := make(chan error, 1)
	go func() { done <- a.Acquire("y", Exclusive) }() // a waits on b
	time.Sleep(30 * time.Millisecond)
	err := b.Acquire("x", Exclusive) // would close the cycle
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("no deadlock reported: %v", err)
	}
	b.Release() // victim aborts
	if err := <-done; err != nil {
		t.Fatalf("survivor failed: %v", err)
	}
	a.Release()
}

func TestThreePartyDeadlock(t *testing.T) {
	m := NewManager()
	a, b, c := m.Begin(), m.Begin(), m.Begin()
	a.Acquire("1", Exclusive)
	b.Acquire("2", Exclusive)
	c.Acquire("3", Exclusive)
	e1 := make(chan error, 1)
	e2 := make(chan error, 1)
	go func() { e1 <- a.Acquire("2", Exclusive) }()
	go func() { e2 <- b.Acquire("3", Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	err := c.Acquire("1", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("3-cycle undetected: %v", err)
	}
	c.Release()
	if err := <-e2; err != nil {
		t.Fatal(err)
	}
	b.Release()
	if err := <-e1; err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two shared holders both upgrading is the classic upgrade deadlock.
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	a.Acquire("k", Shared)
	b.Acquire("k", Shared)
	done := make(chan error, 1)
	go func() { done <- a.Acquire("k", Exclusive) }()
	time.Sleep(30 * time.Millisecond)
	err := b.Acquire("k", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("upgrade deadlock undetected: %v", err)
	}
	b.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	a.Release()
}

func TestReleaseIsIdempotentAndInvalidates(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	a.Acquire("k", Exclusive)
	a.Release()
	a.Release()
	if err := a.Acquire("k", Shared); !errors.Is(err, ErrReleased) {
		t.Fatalf("acquire after release: %v", err)
	}
	if a.TryAcquire("k", Shared) {
		t.Fatal("try-acquire after release succeeded")
	}
}

func TestReleaseWakesWaiterOnOwnToken(t *testing.T) {
	// Releasing a token that is blocked in Acquire must unblock it with
	// ErrReleased rather than leaving the goroutine stuck.
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	a.Acquire("k", Exclusive)
	done := make(chan error, 1)
	go func() { done <- b.Acquire("k", Exclusive) }()
	time.Sleep(30 * time.Millisecond)
	b.Release()
	a.Release()
	select {
	case err := <-done:
		if !errors.Is(err, ErrReleased) && err != nil {
			t.Fatalf("waiter got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter stuck after its token was released")
	}
}

// TestSerializableCounterOverRVM is the integration test: many goroutines
// increment a shared counter in recoverable memory, serialized by the lock
// manager.  Without the locks the increments would race; with them the
// final committed value is exact.
func TestSerializableCounterOverRVM(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "l.log")
	segPath := filepath.Join(dir, "s.seg")
	if err := rvm.CreateLog(logPath, 1<<18); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(segPath, 1, int64(rvm.PageSize)); err != nil {
		t.Fatal(err)
	}
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := db.Map(segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	const workers = 6
	const perWorker = 20
	var wg sync.WaitGroup
	var failures atomic.Int32
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lk := m.Begin()
				if err := lk.Acquire("counter", Exclusive); err != nil {
					failures.Add(1)
					lk.Release()
					continue
				}
				tx, err := db.Begin(rvm.Restore)
				if err != nil {
					lk.Release()
					failures.Add(1)
					continue
				}
				if err := tx.SetRange(reg, 0, 8); err != nil {
					tx.Abort()
					lk.Release()
					failures.Add(1)
					continue
				}
				v := binary.BigEndian.Uint64(reg.Data())
				binary.BigEndian.PutUint64(reg.Data(), v+1)
				if err := tx.Commit(rvm.NoFlush); err != nil {
					failures.Add(1)
				}
				lk.Release()
			}
		}()
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d operations failed", n)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(reg.Data()); got != workers*perWorker {
		t.Fatalf("counter %d want %d", got, workers*perWorker)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Survives restart.
	db2, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reg2, _ := db2.Map(segPath, 0, int64(rvm.PageSize))
	if got := binary.BigEndian.Uint64(reg2.Data()); got != workers*perWorker {
		t.Fatalf("recovered counter %d", got)
	}
}
