package rvm

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sync"

	"github.com/rvm-go/rvm/internal/core"
)

// DebugHandler returns an opt-in HTTP handler exposing live
// introspection for this instance:
//
//	GET /snapshot            Snapshot as JSON (same bytes rvmstat reads)
//	GET /metrics             Snapshot in Prometheus text format
//	GET /trace?format=json   event trace as a JSON array
//	GET /trace?format=chrome event trace in Chrome trace_event format
//
// Nothing is registered automatically — mount it where (and if) the
// deployment wants it, e.g.:
//
//	mux := http.NewServeMux()
//	mux.Handle("/debug/rvm/", http.StripPrefix("/debug/rvm", db.DebugHandler()))
//
// The handler holds no locks across requests; a snapshot is the same
// cost as calling Snapshot directly.
func (r *RVM) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, req *http.Request) {
		sn, err := r.Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sn); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		sn, err := r.Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", core.PromContentType)
		if err := sn.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		format := req.URL.Query().Get("format")
		if format == "" {
			format = TraceFormatJSON
		}
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteTrace(w, format); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("rvm debug endpoints:\n  /snapshot\n  /metrics\n  /trace?format=json|chrome\n"))
	})
	return mux
}

// expvarOwners remembers which instance published each expvar name.
// expvar.Publish panics on a duplicate name and offers no unpublish, so
// the registry is the only way to make re-publishing safe.
var (
	expvarMu     sync.Mutex
	expvarOwners = map[string]*RVM{}
)

// PublishExpvar publishes the instance's Snapshot under name in the
// process-wide expvar registry, making it visible at /debug/vars when
// the application serves expvar.Handler().  Opt-in, and never called by
// the library itself.  Publishing the same name from the same instance
// again is a no-op; a name already used by another instance (or by any
// other expvar publisher — expvar has no unpublish) returns an error
// instead of the panic expvar.Publish would raise.
func (r *RVM) PublishExpvar(name string) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if owner, ok := expvarOwners[name]; ok {
		if owner == r {
			return nil
		}
		return fmt.Errorf("rvm: expvar name %q is already published by another RVM instance", name)
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("rvm: expvar name %q is already in use", name)
	}
	expvar.Publish(name, expvar.Func(func() any {
		sn, err := r.Snapshot()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return sn
	}))
	expvarOwners[name] = r
	return nil
}
