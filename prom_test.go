package rvm_test

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	rvm "github.com/rvm-go/rvm"
)

// promReporter is the slice of testing.T lintProm needs; the negative
// test substitutes a recorder to prove the linter fires.
type promReporter interface {
	Errorf(format string, args ...any)
	Fatal(args ...any)
}

type lintRecorder struct{ errors []string }

func (r *lintRecorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *lintRecorder) Fatal(args ...any) {
	r.errors = append(r.errors, fmt.Sprint(args...))
}

// lintProm validates a Prometheus text-format body against the repo's
// naming conventions (DESIGN.md §14): every family carries HELP and TYPE
// before its samples, names are rvm_ lowercase, counters end in _total,
// counter/gauge families have exactly one TYPE line, labels are
// well-formed, and every sample belongs to a declared family.
func lintProm(t promReporter, body string) {
	nameRe := regexp.MustCompile(`^rvm_[a-z0-9_]+$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9]+(\.[0-9]+)?(e[+-][0-9]+)?)$`)
	labelRe := regexp.MustCompile(`^[a-z_]+="[^"\\]*"$`)

	types := map[string]string{} // family -> counter|gauge|summary
	helped := map[string]bool{}
	sampled := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Errorf("malformed HELP line: %q", line)
				continue
			}
			helped[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			name, typ := parts[2], parts[3]
			if !nameRe.MatchString(name) {
				t.Errorf("metric name %q violates naming convention", name)
			}
			if typ != "counter" && typ != "gauge" && typ != "summary" {
				t.Errorf("metric %s has unexpected type %q", name, typ)
			}
			if _, dup := types[name]; dup {
				t.Errorf("metric %s declared twice", name)
			}
			if !helped[name] {
				t.Errorf("metric %s has TYPE but no preceding HELP", name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("counter %s does not end in _total", name)
			}
			if typ != "counter" && strings.HasSuffix(name, "_total") {
				t.Errorf("%s %s ends in _total, reserved for counters", typ, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line: %q", line)
			continue
		}
		mm := sampleRe.FindStringSubmatch(line)
		if mm == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, value := mm[1], mm[3], mm[4]
		family := name
		typ, ok := types[family]
		if !ok && (strings.HasSuffix(name, "_sum") || strings.HasSuffix(name, "_count")) {
			family = name[:strings.LastIndex(name, "_")]
			typ, ok = types[family]
			if ok && typ != "summary" {
				t.Errorf("sample %s uses summary suffix on %s family %s", name, typ, family)
			}
		}
		if !ok {
			t.Errorf("sample %s has no TYPE declaration", name)
			continue
		}
		sampled[family] = true
		if labels != "" {
			for _, lv := range strings.Split(labels, ",") {
				if !labelRe.MatchString(lv) {
					t.Errorf("malformed label %q in %q", lv, line)
				}
			}
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Errorf("unparsable value in %q: %v", line, err)
		}
		if typ == "counter" && v < 0 {
			t.Errorf("counter %s is negative: %q", name, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name := range types {
		if !sampled[name] {
			t.Errorf("metric %s declared but has no samples", name)
		}
	}
}

// TestPrometheusEndpoint drives commits through a metrics-enabled store,
// scrapes /metrics, and checks both content (the families a dashboard
// needs) and format (the lint above).
func TestPrometheusEndpoint(t *testing.T) {
	s := newStore(t, rvm.Options{TraceEvents: 256, Metrics: true})
	reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, s.db, reg, 4, rvm.Flush)
	commitN(t, s.db, reg, 2, rvm.NoFlush)

	srv := httptest.NewServer(s.db.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"rvm_tx_flush_commits_total 4",
		"rvm_tx_noflush_commits_total 2",
		`rvm_commit_flush_ns{quantile="0.5"}`,
		`rvm_commit_phase_ns{phase="lock_wait",quantile="0.5"}`,
		`rvm_commit_phase_ns{phase="force_wait",quantile="0.99"}`,
		`rvm_commit_phase_ns_count{phase="append"}`,
		`rvm_lock_acquires_total{class="wal"}`,
		`rvm_stalls_total{class="force"}`,
		"rvm_log_used_bytes",
		"rvm_recovery_replayed_records",
		`rvm_shard_commits_total{shard="0"} 6`,
		`rvm_shard_log_bytes{shard="0"}`,
		`rvm_shard_log_forces_total{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics body missing %q", want)
		}
	}
	lintProm(t, body)
}

// TestPrometheusLintRejectsBadFormat proves the linter actually bites.
func TestPrometheusLintRejectsBadFormat(t *testing.T) {
	bad := []string{
		"rvm_orphan_metric 1\n",                                           // no TYPE
		"# HELP rvm_x x\n# TYPE rvm_x counter\nrvm_x 1\n",                 // counter without _total
		"# HELP rvm_y_total y\n# TYPE rvm_y_total gauge\nrvm_y_total 1\n", // _total on a gauge
		"# HELP rvm_z_total z\n# TYPE rvm_z_total counter\nrvm_z_total notanumber\n",
		// The per-shard families: label names are lowercase, label values
		// quoted, and the gauge must not take the counter suffix.
		"# HELP rvm_shard_commits_total c\n# TYPE rvm_shard_commits_total counter\nrvm_shard_commits_total{Shard=\"0\"} 1\n",
		"# HELP rvm_shard_log_bytes b\n# TYPE rvm_shard_log_bytes gauge\nrvm_shard_log_bytes{shard=0} 1\n",
		"# HELP rvm_shard_log_bytes_total b\n# TYPE rvm_shard_log_bytes_total gauge\nrvm_shard_log_bytes_total{shard=\"0\"} 1\n",
	}
	for i, body := range bad {
		rec := &lintRecorder{}
		lintProm(rec, body)
		if len(rec.errors) == 0 {
			t.Errorf("case %d: lint accepted %q", i, body)
		}
	}
}

// TestPrometheusShardFamilies scrapes a 2-shard store after a
// cross-shard commit: every shard appears in the labelled families, the
// two-phase counter registers the commit, and the body still lints.
func TestPrometheusShardFamilies(t *testing.T) {
	pair := 2 * int64(rvm.PageSize)
	s := newStore(t, rvm.Options{
		Metrics:   true,
		LogShards: 2,
		ShardOf:   func(seg uint64, off int64) int { return int(off / pair) },
	})
	ra, err := s.db.Map(s.segPath, 0, pair)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.db.Map(s.segPath, pair, pair)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, s.db, ra, 3, rvm.Flush)
	tx, _ := s.db.Begin(rvm.NoRestore)
	tx.Modify(ra, 0, []byte("x"))
	tx.Modify(rb, 0, []byte("y"))
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.db.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`rvm_shard_commits_total{shard="0"} 4`,
		`rvm_shard_commits_total{shard="1"} 1`,
		`rvm_shard_log_bytes{shard="0"}`,
		`rvm_shard_log_bytes{shard="1"}`,
		`rvm_shard_log_forces_total{shard="1"}`,
		"rvm_tx_cross_shard_commits_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics body missing %q", want)
		}
	}
	lintProm(t, body)
}

// TestPrometheusMetricsDisabled serves a counters-only exposition when
// the registry is off — still valid text format.
func TestPrometheusMetricsDisabled(t *testing.T) {
	s := newStore(t, rvm.Options{})
	srv := httptest.NewServer(s.db.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if strings.Contains(body, "rvm_commit_phase_ns") {
		t.Error("phase summaries served with metrics disabled")
	}
	if !strings.Contains(body, "rvm_log_size_bytes") {
		t.Error("levels missing from counters-only exposition")
	}
	lintProm(t, body)
}

// TestPublishExpvarTwice: re-publishing from the same instance is a
// no-op; a name owned by someone else errors instead of panicking.
func TestPublishExpvarTwice(t *testing.T) {
	a := newStore(t, rvm.Options{})
	b := newStore(t, rvm.Options{})
	const name = "rvm-test-publish-twice"
	if err := a.db.PublishExpvar(name); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if err := a.db.PublishExpvar(name); err != nil {
		t.Fatalf("same-instance re-publish: %v", err)
	}
	if err := b.db.PublishExpvar(name); err == nil {
		t.Fatal("publishing another instance under a taken name succeeded")
	}
	if err := b.db.PublishExpvar("rvm-test-publish-other"); err != nil {
		t.Fatalf("fresh name: %v", err)
	}
}

// TestCommitPhaseAttribution is the acceptance check for the phase
// model: the five phases partition the flush-commit critical path, so
// with 16 concurrent committers the sum of the phase p50s must land
// within 20% of the observed CommitFlush p50.  Scheduling noise can
// skew any single run; best of three attempts must pass.
func TestCommitPhaseAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive sweep")
	}
	const workers, commitsEach = 16, 25
	var lastErr string
	for attempt := 0; attempt < 3; attempt++ {
		s := newStore(t, rvm.Options{
			Metrics:           true,
			GroupCommit:       true,
			TruncateThreshold: -1,
		})
		reg, err := s.db.Map(s.segPath, 0, int64(rvm.PageSize))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < commitsEach; i++ {
					tx, err := s.db.Begin(rvm.NoRestore)
					if err != nil {
						errs[w] = err
						return
					}
					if err := tx.Modify(reg, int64(w)*64, []byte("phasepay")); err != nil {
						errs[w] = err
						return
					}
					if err := tx.Commit(rvm.Flush); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("worker %d: %v", w, err)
			}
		}
		sn, err := s.db.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		m := sn.Metrics
		total := m.CommitFlushNs.P50
		phaseSum := m.PhaseLockWaitNs.P50 + m.PhaseEncodeNs.P50 +
			m.PhasePipeWaitNs.P50 + m.PhaseAppendNs.P50 + m.PhaseForceWaitNs.P50
		if m.PhaseLockWaitNs.Count != uint64(workers*commitsEach) {
			t.Fatalf("phase count = %d, want %d", m.PhaseLockWaitNs.Count, workers*commitsEach)
		}
		ratio := float64(phaseSum) / float64(total)
		if ratio >= 0.8 && ratio <= 1.2 {
			return // attribution holds
		}
		lastErr = fmt.Sprintf("attempt %d: phase p50 sum %d vs commit p50 %d (ratio %.2f)",
			attempt, phaseSum, total, ratio)
		t.Log(lastErr)
		s.db.Close()
		s.db = nil
	}
	t.Fatalf("phase attribution off by more than 20%% in all attempts: %s", lastErr)
}
