// Package rvmdist layers distributed transactions on RVM, following the
// sketch in §8 of the paper: "Support for distributed transactions could
// be provided by a library built on RVM.  Such a library would provide
// coordinator and subordinate routines for each phase of a two-phase
// commit ... The communication mechanism could be left unspecified until
// runtime by using upcalls from the library to perform communications."
//
// The subordinate's first-phase commit is a real, durable local RVM
// commit.  To make it revocable, the old-value records of the transaction
// are preserved — in recoverable memory, inside the same transaction, so
// prepare is atomic — until the outcome of the two-phase commit is clear.
// On global commit the records are discarded; on global abort they drive a
// compensating RVM transaction, exactly as the paper proposes (the
// in-memory form of the same records is available directly from
// Tx.CommitUndo).
//
// The coordinator runs presumed-abort 2PC: only commit decisions are
// logged (in its own recoverable heap), so a coordinator crash before the
// decision record aborts the transaction implicitly, and a crash after it
// is repaired by RetryPending.
package rvmdist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
)

// Transport delivers the coordinator's upcalls to subordinates.  Sites are
// named by opaque strings; tests and single-process applications route to
// local Subordinates, distributed ones marshal over their own RPC.
type Transport interface {
	// Prepare asks a site to locally commit its part of gtid and vote.
	Prepare(site, gtid string) (vote bool, err error)
	// Commit tells a site the global outcome is commit.  Must be
	// idempotent: retries after crashes deliver it more than once.
	Commit(site, gtid string) error
	// Abort tells a site the global outcome is abort.  Must be idempotent
	// and tolerate sites that never prepared (presumed abort).
	Abort(site, gtid string) error
}

// Errors returned by the layer.
var (
	ErrAborted       = errors.New("rvmdist: transaction aborted")
	ErrPartialCommit = errors.New("rvmdist: commit decided but not yet delivered to all sites; use RetryPending")
	ErrUnknownGTID   = errors.New("rvmdist: unknown global transaction")
	ErrNoRegion      = errors.New("rvmdist: no registered region covers an undo record")
)

// ---------------------------------------------------------------------------
// Persistent record lists (shared by coordinator and subordinate).
//
// Both sides keep a singly-linked list of variable-size records in an rds
// heap, anchored at the heap root.  Record payload layout:
//
//	[8 next][2 gtidLen][gtid][body...]
// ---------------------------------------------------------------------------

func u16(b []byte) int           { return int(binary.BigEndian.Uint16(b)) }
func put16(b []byte, v int)      { binary.BigEndian.PutUint16(b, uint16(v)) }
func u64at(b []byte) uint64      { return binary.BigEndian.Uint64(b) }
func put64at(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// listInsert links a freshly allocated block at the head of the root list.
func listInsert(h *rds.Heap, tx *rvm.Tx, block rds.Offset) error {
	b, err := h.Bytes(block)
	if err != nil {
		return err
	}
	if err := h.SetRange(tx, block, 0, 8); err != nil {
		return err
	}
	put64at(b[0:], uint64(h.Root()))
	return h.SetRoot(tx, block)
}

// listRemove unlinks block from the root list and frees it, under tx.
func listRemove(h *rds.Heap, tx *rvm.Tx, block rds.Offset) error {
	cur := h.Root()
	var prev rds.Offset
	for cur != 0 {
		cb, err := h.Bytes(cur)
		if err != nil {
			return err
		}
		next := rds.Offset(u64at(cb[0:]))
		if cur == block {
			if prev == 0 {
				if err := h.SetRoot(tx, next); err != nil {
					return err
				}
			} else {
				pb, err := h.Bytes(prev)
				if err != nil {
					return err
				}
				if err := h.SetRange(tx, prev, 0, 8); err != nil {
					return err
				}
				put64at(pb[0:], uint64(next))
			}
			return h.Free(tx, block)
		}
		prev, cur = cur, next
	}
	return fmt.Errorf("rvmdist: block %d not on list", block)
}

// listWalk visits every record block on the root list.
func listWalk(h *rds.Heap, fn func(block rds.Offset, gtid string, body []byte) error) error {
	for cur := h.Root(); cur != 0; {
		b, err := h.Bytes(cur)
		if err != nil {
			return err
		}
		next := rds.Offset(u64at(b[0:]))
		gl := u16(b[8:])
		gtid := string(b[10 : 10+gl])
		if err := fn(cur, gtid, b[10+gl:]); err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// ---------------------------------------------------------------------------
// Subordinate
// ---------------------------------------------------------------------------

// PrepTx is the transaction handle passed to a subordinate's work
// function.  It mirrors rvm.Tx's SetRange/Modify but additionally captures
// old values so the prepare can later be compensated.
type PrepTx struct {
	tx   *rvm.Tx
	undo []rvm.UndoRecord
}

// SetRange declares an upcoming modification, capturing the current bytes
// for a possible compensating transaction.
func (p *PrepTx) SetRange(reg *rvm.Region, off, n int64) error {
	if n < 0 || off < 0 || off+n > reg.Length() {
		return fmt.Errorf("rvmdist: range [%d,+%d) outside region", off, n)
	}
	p.undo = append(p.undo, rvm.UndoRecord{
		Region: reg, Off: off,
		SegID: reg.SegmentID(), SegOff: reg.SegmentOffset() + off,
		Old: append([]byte(nil), reg.Data()[off:off+n]...),
	})
	return p.tx.SetRange(reg, off, n)
}

// Modify is SetRange followed by a copy into the region.
func (p *PrepTx) Modify(reg *rvm.Region, off int64, data []byte) error {
	if err := p.SetRange(reg, off, int64(len(data))); err != nil {
		return err
	}
	copy(reg.Data()[off:], data)
	return nil
}

// Subordinate is one site's half of two-phase commit.  Its pending-prepare
// records live in a dedicated rds heap (give it its own region) so they
// survive crashes between prepare and the global decision.
type Subordinate struct {
	mu      sync.Mutex
	db      *rvm.RVM
	heap    *rds.Heap
	regions []*rvm.Region
	pending map[string]rds.Offset
}

// NewSubordinate attaches a subordinate to its pending-record heap,
// re-loading any prepares left unresolved by a crash (inspect Pending and
// call ResolveAll after registering regions).
func NewSubordinate(db *rvm.RVM, heap *rds.Heap) (*Subordinate, error) {
	s := &Subordinate{db: db, heap: heap, pending: make(map[string]rds.Offset)}
	err := listWalk(heap, func(block rds.Offset, gtid string, body []byte) error {
		s.pending[gtid] = block
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Register makes a mapped region available for compensating transactions.
// Register every region the site's transactions touch, especially before
// ResolveAll after a restart.
func (s *Subordinate) Register(reg *rvm.Region) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regions = append(s.regions, reg)
}

// findRegion locates a registered region covering [segOff, segOff+n) of
// segment segID and returns it with the region-relative offset.
func (s *Subordinate) findRegion(segID uint64, segOff, n int64) (*rvm.Region, int64, error) {
	for _, reg := range s.regions {
		if reg.SegmentID() != segID {
			continue
		}
		rel := segOff - reg.SegmentOffset()
		if rel >= 0 && rel+n <= reg.Length() {
			return reg, rel, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: segment %d [%d,+%d)", ErrNoRegion, segID, segOff, n)
}

// Prepare runs work inside a local RVM transaction, commits it durably,
// and records the old values so the commit can be compensated.  It returns
// the site's vote: false (with the work rolled back) if work failed.
func (s *Subordinate) Prepare(gtid string, work func(*PrepTx) error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.pending[gtid]; dup {
		return false, fmt.Errorf("rvmdist: gtid %q already prepared", gtid)
	}
	tx, err := s.db.Begin(rvm.Restore)
	if err != nil {
		return false, err
	}
	p := &PrepTx{tx: tx}
	if err := work(p); err != nil {
		if aerr := tx.Abort(); aerr != nil {
			return false, aerr
		}
		return false, nil // vote no, locally clean
	}
	// Persist the pending record in the same transaction: prepare is
	// atomic with the data it guards.
	size := int64(8 + 2 + len(gtid) + 4)
	for _, u := range p.undo {
		size += 8 + 8 + 4 + int64(len(u.Old))
	}
	block, err := s.heap.Alloc(tx, size)
	if err != nil {
		tx.Abort()
		return false, err
	}
	b, err := s.heap.Bytes(block)
	if err != nil {
		tx.Abort()
		return false, err
	}
	if err := s.heap.SetRange(tx, block, 0, size); err != nil {
		tx.Abort()
		return false, err
	}
	put16(b[8:], len(gtid))
	copy(b[10:], gtid)
	pos := 10 + len(gtid)
	binary.BigEndian.PutUint32(b[pos:], uint32(len(p.undo)))
	pos += 4
	for _, u := range p.undo {
		put64at(b[pos:], u.SegID)
		put64at(b[pos+8:], uint64(u.SegOff))
		binary.BigEndian.PutUint32(b[pos+16:], uint32(len(u.Old)))
		pos += 20
		copy(b[pos:], u.Old)
		pos += len(u.Old)
	}
	if err := listInsert(s.heap, tx, block); err != nil {
		tx.Abort()
		return false, err
	}
	//rvmcheck:allow locksync -- 2PC: the durable vote must be published atomically with the pending map under s.mu; the subordinate handles one message at a time by design
	if err := tx.Commit(rvm.Flush); err != nil {
		return false, err
	}
	s.pending[gtid] = block
	return true, nil
}

// Commit resolves a prepared transaction as globally committed: the undo
// records are discarded.  Unknown gtids are a no-op (idempotent retries).
func (s *Subordinate) Commit(gtid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	block, ok := s.pending[gtid]
	if !ok {
		return nil
	}
	tx, err := s.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	if err := listRemove(s.heap, tx, block); err != nil {
		tx.Abort()
		return err
	}
	//rvmcheck:allow locksync -- 2PC: discarding the undo record must be atomic with the pending map under s.mu; the subordinate handles one message at a time by design
	if err := tx.Commit(rvm.Flush); err != nil {
		return err
	}
	delete(s.pending, gtid)
	return nil
}

// Abort resolves a prepared transaction as globally aborted by running a
// compensating RVM transaction built from the saved old-value records.
// Unknown gtids are a no-op (presumed abort).
func (s *Subordinate) Abort(gtid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	block, ok := s.pending[gtid]
	if !ok {
		return nil
	}
	b, err := s.heap.Bytes(block)
	if err != nil {
		return err
	}
	gl := u16(b[8:])
	pos := 10 + gl
	nrec := int(binary.BigEndian.Uint32(b[pos:]))
	pos += 4
	type rec struct {
		segID uint64
		off   int64
		old   []byte
	}
	recs := make([]rec, 0, nrec)
	for i := 0; i < nrec; i++ {
		segID := u64at(b[pos:])
		off := int64(u64at(b[pos+8:]))
		n := int(binary.BigEndian.Uint32(b[pos+16:]))
		pos += 20
		recs = append(recs, rec{segID, off, append([]byte(nil), b[pos:pos+n]...)})
		pos += n
	}
	tx, err := s.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	// Compensate newest capture first.
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		reg, rel, err := s.findRegion(r.segID, r.off, int64(len(r.old)))
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.SetRange(reg, rel, int64(len(r.old))); err != nil {
			tx.Abort()
			return err
		}
		copy(reg.Data()[rel:], r.old)
	}
	if err := listRemove(s.heap, tx, block); err != nil {
		tx.Abort()
		return err
	}
	//rvmcheck:allow locksync -- 2PC: the compensating commit must be atomic with the pending map under s.mu; the subordinate handles one message at a time by design
	if err := tx.Commit(rvm.Flush); err != nil {
		return err
	}
	delete(s.pending, gtid)
	return nil
}

// Pending lists prepared transactions awaiting a global outcome, sorted.
func (s *Subordinate) Pending() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.pending))
	for g := range s.pending {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// ResolveAll drives every pending prepare to its outcome: committed(gtid)
// reports the global decision (true = commit).  Use after a restart, once
// the relevant regions are Registered.
func (s *Subordinate) ResolveAll(committed func(gtid string) (bool, error)) error {
	for _, g := range s.Pending() {
		ok, err := committed(g)
		if err != nil {
			return err
		}
		if ok {
			if err := s.Commit(g); err != nil {
				return err
			}
		} else {
			if err := s.Abort(g); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

// Coordinator drives presumed-abort two-phase commit.  Its decision log
// lives in a dedicated rds heap.
type Coordinator struct {
	mu        sync.Mutex
	db        *rvm.RVM
	heap      *rds.Heap
	transport Transport
	decided   map[string][]string // gtid -> sites still owed a Commit
}

// NewCoordinator attaches a coordinator to its decision-log heap,
// reloading commit decisions that were not fully delivered before a crash
// (deliver them with RetryPending).
func NewCoordinator(db *rvm.RVM, heap *rds.Heap, transport Transport) (*Coordinator, error) {
	c := &Coordinator{db: db, heap: heap, transport: transport, decided: make(map[string][]string)}
	err := listWalk(heap, func(_ rds.Offset, gtid string, body []byte) error {
		n := u16(body[0:])
		sites := make([]string, 0, n)
		pos := 2
		for i := 0; i < n; i++ {
			sl := u16(body[pos:])
			sites = append(sites, string(body[pos+2:pos+2+sl]))
			pos += 2 + sl
		}
		c.decided[gtid] = sites
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// logDecision durably records "gtid committed at sites".
func (c *Coordinator) logDecision(gtid string, sites []string) error {
	size := int64(8 + 2 + len(gtid) + 2)
	for _, s := range sites {
		size += 2 + int64(len(s))
	}
	tx, err := c.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	block, err := c.heap.Alloc(tx, size)
	if err != nil {
		tx.Abort()
		return err
	}
	b, _ := c.heap.Bytes(block)
	if err := c.heap.SetRange(tx, block, 0, size); err != nil {
		tx.Abort()
		return err
	}
	put16(b[8:], len(gtid))
	copy(b[10:], gtid)
	pos := 10 + len(gtid)
	put16(b[pos:], len(sites))
	pos += 2
	for _, s := range sites {
		put16(b[pos:], len(s))
		copy(b[pos+2:], s)
		pos += 2 + len(s)
	}
	if err := listInsert(c.heap, tx, block); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(rvm.Flush)
}

// forgetDecision removes gtid's decision record once all sites acked.
func (c *Coordinator) forgetDecision(gtid string) error {
	var target rds.Offset
	err := listWalk(c.heap, func(block rds.Offset, g string, _ []byte) error {
		if g == gtid {
			target = block
		}
		return nil
	})
	if err != nil {
		return err
	}
	if target == 0 {
		return nil
	}
	tx, err := c.db.Begin(rvm.Restore)
	if err != nil {
		return err
	}
	if err := listRemove(c.heap, tx, target); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit(rvm.Flush)
}

// Run executes two-phase commit for gtid across sites.  It returns nil on
// full commit, ErrAborted when any site voted no or failed to prepare, and
// ErrPartialCommit when the commit decision is durable but some site has
// not yet acknowledged it (RetryPending finishes the job).
func (c *Coordinator) Run(gtid string, sites []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Phase 1: prepare everywhere.
	prepared := make([]string, 0, len(sites))
	for _, site := range sites {
		//rvmcheck:allow locksync -- in-process transports run the subordinate's durable prepare inline; the coordinator serializes rounds under c.mu by design
		vote, err := c.transport.Prepare(site, gtid)
		if err != nil || !vote {
			// Presumed abort: roll back every site that prepared; sites
			// that never heard of gtid treat Abort as a no-op.
			for _, p := range prepared {
				//rvmcheck:allow locksync -- presumed-abort cleanup; in-process transports run the subordinate's compensating flush inline, still inside the serialized round
				_ = c.transport.Abort(p, gtid) // best effort; retries are the app's policy
			}
			//rvmcheck:allow locksync -- presumed-abort cleanup; in-process transports run the subordinate's compensating flush inline, still inside the serialized round
			_ = c.transport.Abort(site, gtid)
			if err != nil {
				return fmt.Errorf("%w: prepare at %s: %v", ErrAborted, site, err)
			}
			return fmt.Errorf("%w: %s voted no", ErrAborted, site)
		}
		prepared = append(prepared, site)
	}
	// Decision point: log commit durably before telling anyone.
	//rvmcheck:allow locksync -- the commit decision must be durable before any site learns it; the coordinator serializes rounds under c.mu by design
	if err := c.logDecision(gtid, sites); err != nil {
		for _, p := range prepared {
			//rvmcheck:allow locksync -- presumed-abort cleanup; in-process transports run the subordinate's compensating flush inline, still inside the serialized round
			_ = c.transport.Abort(p, gtid)
		}
		return fmt.Errorf("%w: decision log: %v", ErrAborted, err)
	}
	c.decided[gtid] = append([]string(nil), sites...)
	// Phase 2: deliver the commit.
	//rvmcheck:allow locksync -- delivery (and its decision-record cleanup flush) must see the decided entry just published; the coordinator serializes rounds under c.mu by design
	return c.deliverLocked(gtid)
}

// deliverLocked sends Commit to every site still owed one.
func (c *Coordinator) deliverLocked(gtid string) error {
	sites, ok := c.decided[gtid]
	if !ok {
		return nil
	}
	var remaining []string
	for _, site := range sites {
		if err := c.transport.Commit(site, gtid); err != nil {
			remaining = append(remaining, site)
		}
	}
	if len(remaining) > 0 {
		c.decided[gtid] = remaining
		return fmt.Errorf("%w: %d site(s) unreached", ErrPartialCommit, len(remaining))
	}
	delete(c.decided, gtid)
	return c.forgetDecision(gtid)
}

// Outcome reports the durable decision for gtid: true only if a commit
// record exists (presumed abort otherwise).  Subordinates use it from
// ResolveAll after a crash.
func (c *Coordinator) Outcome(gtid string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.decided[gtid]
	return ok
}

// Pending lists commit decisions not yet delivered to every site.
func (c *Coordinator) Pending() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.decided))
	for g := range c.decided {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// RetryPending re-delivers every undelivered commit decision.
func (c *Coordinator) RetryPending() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, g := range c.pendingLocked() {
		//rvmcheck:allow locksync -- re-delivery (and its decision-record cleanup flush) runs under c.mu so it sees a consistent decided map; the coordinator serializes rounds by design
		if err := c.deliverLocked(g); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (c *Coordinator) pendingLocked() []string {
	out := make([]string, 0, len(c.decided))
	for g := range c.decided {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
