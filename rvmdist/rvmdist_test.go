package rvmdist

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	rvm "github.com/rvm-go/rvm"
	"github.com/rvm-go/rvm/rds"
)

// site is one in-process "machine": its own log, data segment, pending
// heap, and subordinate.
type site struct {
	name    string
	dir     string
	logPath string
	dataSeg string
	metaSeg string
	db      *rvm.RVM
	data    *rvm.Region
	sub     *Subordinate
}

func page() int64 { return int64(rvm.PageSize) }

func newSite(t *testing.T, name string) *site {
	t.Helper()
	dir := t.TempDir()
	s := &site{
		name:    name,
		dir:     dir,
		logPath: filepath.Join(dir, "site.log"),
		dataSeg: filepath.Join(dir, "data.seg"),
		metaSeg: filepath.Join(dir, "meta.seg"),
	}
	if err := rvm.CreateLog(s.logPath, 1<<18); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(s.dataSeg, 1, page()); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(s.metaSeg, 2, 2*page()); err != nil {
		t.Fatal(err)
	}
	s.open(t, true)
	return s
}

// open (re)opens the site's RVM state; format=true formats the meta heap.
func (s *site) open(t *testing.T, format bool) {
	t.Helper()
	db, err := rvm.Open(rvm.Options{LogPath: s.logPath})
	if err != nil {
		t.Fatal(err)
	}
	s.db = db
	t.Cleanup(func() { db.Close() })
	s.data, err = db.Map(s.dataSeg, 0, page())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := db.Map(s.metaSeg, 0, 2*page())
	if err != nil {
		t.Fatal(err)
	}
	var heap *rds.Heap
	if format {
		heap, err = rds.Format(db, meta)
	} else {
		heap, err = rds.Attach(db, meta)
	}
	if err != nil {
		t.Fatal(err)
	}
	s.sub, err = NewSubordinate(db, heap)
	if err != nil {
		t.Fatal(err)
	}
	s.sub.Register(s.data)
}

// crash drops the site's engine without closing and reopens it.
func (s *site) crash(t *testing.T) {
	t.Helper()
	s.open(t, false)
}

// memTransport routes upcalls to local sites, with injectable failures.
type memTransport struct {
	sites     map[string]*site
	work      map[string]func(*PrepTx) error // per site
	voteNo    map[string]bool
	commitErr map[string]bool
}

func (m *memTransport) Prepare(siteName, gtid string) (bool, error) {
	if m.voteNo[siteName] {
		return false, nil
	}
	s := m.sites[siteName]
	return s.sub.Prepare(gtid, m.work[siteName])
}

func (m *memTransport) Commit(siteName, gtid string) error {
	if m.commitErr[siteName] {
		return fmt.Errorf("site %s unreachable", siteName)
	}
	return m.sites[siteName].sub.Commit(gtid)
}

func (m *memTransport) Abort(siteName, gtid string) error {
	return m.sites[siteName].sub.Abort(gtid)
}

// coordinatorHost builds a coordinator with its own RVM state.
func newCoordinator(t *testing.T, tr Transport) (*Coordinator, func(t *testing.T) *Coordinator) {
	t.Helper()
	dir := t.TempDir()
	logPath := filepath.Join(dir, "coord.log")
	metaSeg := filepath.Join(dir, "meta.seg")
	if err := rvm.CreateLog(logPath, 1<<18); err != nil {
		t.Fatal(err)
	}
	if err := rvm.CreateSegment(metaSeg, 1, 2*page()); err != nil {
		t.Fatal(err)
	}
	db, err := rvm.Open(rvm.Options{LogPath: logPath})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	meta, err := db.Map(metaSeg, 0, 2*page())
	if err != nil {
		t.Fatal(err)
	}
	heap, err := rds.Format(db, meta)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(db, heap, tr)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func(t *testing.T) *Coordinator {
		db2, err := rvm.Open(rvm.Options{LogPath: logPath})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db2.Close() })
		meta2, err := db2.Map(metaSeg, 0, 2*page())
		if err != nil {
			t.Fatal(err)
		}
		heap2, err := rds.Attach(db2, meta2)
		if err != nil {
			t.Fatal(err)
		}
		co2, err := NewCoordinator(db2, heap2, tr)
		if err != nil {
			t.Fatal(err)
		}
		return co2
	}
	return co, reopen
}

func writeWork(s *site, off int64, data string) func(*PrepTx) error {
	return func(p *PrepTx) error {
		return p.Modify(s.data, off, []byte(data))
	}
}

func setup3(t *testing.T) (*memTransport, []string) {
	t.Helper()
	tr := &memTransport{
		sites:     map[string]*site{},
		work:      map[string]func(*PrepTx) error{},
		voteNo:    map[string]bool{},
		commitErr: map[string]bool{},
	}
	var names []string
	for _, n := range []string{"alpha", "beta", "gamma"} {
		s := newSite(t, n)
		tr.sites[n] = s
		tr.work[n] = writeWork(s, 0, "value@"+n)
		names = append(names, n)
	}
	return tr, names
}

func TestTwoPhaseCommitHappyPath(t *testing.T) {
	tr, names := setup3(t)
	co, _ := newCoordinator(t, tr)
	if err := co.Run("g1", names); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		s := tr.sites[n]
		want := []byte("value@" + n)
		if !bytes.Equal(s.data.Data()[:len(want)], want) {
			t.Fatalf("site %s missing committed data", n)
		}
		if p := s.sub.Pending(); len(p) != 0 {
			t.Fatalf("site %s still pending: %v", n, p)
		}
		// Durable across a crash.
		s.crash(t)
		if !bytes.Equal(s.data.Data()[:len(want)], want) {
			t.Fatalf("site %s lost data after crash", n)
		}
	}
	if p := co.Pending(); len(p) != 0 {
		t.Fatalf("coordinator still pending: %v", p)
	}
}

func TestVoteNoAbortsEverywhere(t *testing.T) {
	tr, names := setup3(t)
	tr.voteNo["gamma"] = true
	co, _ := newCoordinator(t, tr)
	err := co.Run("g2", names)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v", err)
	}
	for _, n := range names {
		s := tr.sites[n]
		for _, b := range s.data.Data()[:16] {
			if b != 0 {
				t.Fatalf("site %s retains aborted data", n)
			}
		}
		if p := s.sub.Pending(); len(p) != 0 {
			t.Fatalf("site %s pending after abort: %v", n, p)
		}
	}
}

func TestCompensationRestoresPriorState(t *testing.T) {
	tr, names := setup3(t)
	alpha := tr.sites["alpha"]
	// Seed committed data at alpha, then run a 2PC that overwrites it and
	// aborts: compensation must restore the seed.
	tx, _ := alpha.db.Begin(rvm.Restore)
	tx.Modify(alpha.data, 0, []byte("seed-value"))
	if err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	tr.voteNo["gamma"] = true
	co, _ := newCoordinator(t, tr)
	if err := co.Run("g3", names); !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v", err)
	}
	if !bytes.Equal(alpha.data.Data()[:10], []byte("seed-value")) {
		t.Fatalf("compensation failed: %q", alpha.data.Data()[:10])
	}
	// And the compensated state is what recovery yields.
	alpha.crash(t)
	if !bytes.Equal(alpha.data.Data()[:10], []byte("seed-value")) {
		t.Fatal("compensation not durable")
	}
}

func TestSubordinateCrashBetweenPrepareAndDecision(t *testing.T) {
	tr, _ := setup3(t)
	beta := tr.sites["beta"]
	vote, err := beta.sub.Prepare("g4", writeWork(beta, 0, "prepared!"))
	if err != nil || !vote {
		t.Fatalf("prepare: %v %v", vote, err)
	}
	// Crash after prepare.
	beta.crash(t)
	if p := beta.sub.Pending(); len(p) != 1 || p[0] != "g4" {
		t.Fatalf("pending after crash: %v", p)
	}
	// Outcome abort: compensate.
	if err := beta.sub.ResolveAll(func(string) (bool, error) { return false, nil }); err != nil {
		t.Fatal(err)
	}
	for _, b := range beta.data.Data()[:9] {
		if b != 0 {
			t.Fatal("aborted prepare leaked after crash")
		}
	}

	// Again, with outcome commit this time.
	vote, err = beta.sub.Prepare("g5", writeWork(beta, 0, "prepared!"))
	if err != nil || !vote {
		t.Fatal("second prepare failed")
	}
	beta.crash(t)
	if err := beta.sub.ResolveAll(func(string) (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(beta.data.Data()[:9], []byte("prepared!")) {
		t.Fatal("committed prepare lost after crash")
	}
	if p := beta.sub.Pending(); len(p) != 0 {
		t.Fatalf("pending not cleared: %v", p)
	}
}

func TestCoordinatorCrashAfterDecision(t *testing.T) {
	tr, names := setup3(t)
	tr.commitErr["gamma"] = true // phase 2 cannot reach gamma
	co, reopen := newCoordinator(t, tr)
	err := co.Run("g6", names)
	if !errors.Is(err, ErrPartialCommit) {
		t.Fatalf("got %v", err)
	}
	// gamma is prepared but undecided; alpha and beta committed.
	if p := tr.sites["gamma"].sub.Pending(); len(p) != 1 {
		t.Fatalf("gamma pending: %v", p)
	}
	// Coordinator crashes and restarts: the decision survived.
	co2 := reopen(t)
	if !co2.Outcome("g6") {
		t.Fatal("commit decision lost across coordinator crash")
	}
	tr.commitErr["gamma"] = false
	if err := co2.RetryPending(); err != nil {
		t.Fatal(err)
	}
	gamma := tr.sites["gamma"]
	if !bytes.Equal(gamma.data.Data()[:11], []byte("value@gamma")) {
		t.Fatal("gamma never committed")
	}
	if co2.Outcome("g6") {
		t.Fatal("decision record not garbage-collected after full delivery")
	}
}

func TestIdempotentOutcomeDelivery(t *testing.T) {
	tr, _ := setup3(t)
	alpha := tr.sites["alpha"]
	vote, err := alpha.sub.Prepare("g7", writeWork(alpha, 0, "x"))
	if err != nil || !vote {
		t.Fatal("prepare failed")
	}
	if err := alpha.sub.Commit("g7"); err != nil {
		t.Fatal(err)
	}
	if err := alpha.sub.Commit("g7"); err != nil { // retry is a no-op
		t.Fatal(err)
	}
	if err := alpha.sub.Abort("g7"); err != nil { // late abort of resolved gtid: no-op
		t.Fatal(err)
	}
	if err := alpha.sub.Abort("never-prepared"); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePrepareRejected(t *testing.T) {
	tr, _ := setup3(t)
	alpha := tr.sites["alpha"]
	if _, err := alpha.sub.Prepare("g8", writeWork(alpha, 0, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.sub.Prepare("g8", writeWork(alpha, 0, "y")); err == nil {
		t.Fatal("duplicate prepare accepted")
	}
	alpha.sub.Abort("g8")
}

func TestWorkErrorVotesNo(t *testing.T) {
	tr, _ := setup3(t)
	alpha := tr.sites["alpha"]
	vote, err := alpha.sub.Prepare("g9", func(p *PrepTx) error {
		if err := p.Modify(alpha.data, 0, []byte("half")); err != nil {
			return err
		}
		return fmt.Errorf("application validation failed")
	})
	if err != nil {
		t.Fatal(err)
	}
	if vote {
		t.Fatal("failing work voted yes")
	}
	// The half-done work was rolled back locally.
	for _, b := range alpha.data.Data()[:4] {
		if b != 0 {
			t.Fatal("failed work leaked")
		}
	}
}

func TestMultiplePendingPrepares(t *testing.T) {
	tr, _ := setup3(t)
	alpha := tr.sites["alpha"]
	for i := 0; i < 5; i++ {
		g := fmt.Sprintf("multi-%d", i)
		if _, err := alpha.sub.Prepare(g, writeWork(alpha, int64(i*32), fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	alpha.crash(t)
	if p := alpha.sub.Pending(); len(p) != 5 {
		t.Fatalf("pending after crash: %v", p)
	}
	// Commit evens, abort odds.
	err := alpha.sub.ResolveAll(func(g string) (bool, error) {
		var i int
		fmt.Sscanf(g, "multi-%d", &i)
		return i%2 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got := alpha.data.Data()[i*32 : i*32+2]
		want := []byte{0, 0}
		if i%2 == 0 {
			want = []byte(fmt.Sprintf("w%d", i))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("gtid %d: got %q want %q", i, got, want)
		}
	}
}

func TestCommitUndoDirectly(t *testing.T) {
	// The §8 extension on the core API: CommitUndo returns the old-value
	// records, and applying them in reverse compensates the commit.
	s := newSite(t, "solo")
	tx, _ := s.db.Begin(rvm.Restore)
	tx.Modify(s.data, 0, []byte("AAAA"))
	tx.Modify(s.data, 2, []byte("BBBB"))
	undo, err := tx.CommitUndo(rvm.Flush)
	if err != nil {
		t.Fatal(err)
	}
	if len(undo) == 0 {
		t.Fatal("no undo records")
	}
	comp, _ := s.db.Begin(rvm.Restore)
	for i := len(undo) - 1; i >= 0; i-- {
		u := undo[i]
		if err := comp.Modify(u.Region, u.Off, u.Old); err != nil {
			t.Fatal(err)
		}
	}
	if err := comp.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	for _, b := range s.data.Data()[:6] {
		if b != 0 {
			t.Fatalf("compensation incomplete: % x", s.data.Data()[:6])
		}
	}
}
